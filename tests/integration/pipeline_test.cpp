// The intra-replay pipeline must be observationally identical to the serial
// streaming loop: a prepare thread only reads the trace ahead of the DES,
// so every latency sample, counter, and byte of end state matches with the
// pipeline on or off — for every engine, and regardless of ring depth.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "replay/parallel_runner.hpp"
#include "replay/replayer.hpp"
#include "synth/generator.hpp"

namespace pod {
namespace {

Trace small_trace() {
  WorkloadProfile p = tiny_test_profile();
  p.measured_requests = 2000;
  p.warmup_requests = 1000;
  return TraceGenerator(p).generate();
}

RunSpec spec_for(EngineKind kind) {
  RunSpec spec;
  spec.engine = kind;
  spec.engine_cfg.logical_blocks = tiny_test_profile().volume_blocks;
  spec.engine_cfg.memory_bytes = 2 * kMiB;
  return spec;
}

PipelineConfig pipeline_on(std::size_t depth = 8) {
  PipelineConfig p;
  p.enabled = true;
  p.depth = depth;
  return p;
}

PipelineConfig pipeline_off() {
  PipelineConfig p;
  p.enabled = false;
  return p;
}

const std::vector<EngineKind> kAllEngines = {
    EngineKind::kNative,       EngineKind::kFullDedupe,
    EngineKind::kIDedup,       EngineKind::kSelectDedupe,
    EngineKind::kPod,          EngineKind::kIoDedup,
};

void expect_identical(const ReplayResult& a, const ReplayResult& b) {
  EXPECT_EQ(a.all.count(), b.all.count());
  EXPECT_DOUBLE_EQ(a.mean_ms(), b.mean_ms());
  EXPECT_DOUBLE_EQ(a.read_mean_ms(), b.read_mean_ms());
  EXPECT_DOUBLE_EQ(a.write_mean_ms(), b.write_mean_ms());
  EXPECT_DOUBLE_EQ(a.all.percentile_ms(0.99), b.all.percentile_ms(0.99));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.physical_blocks_used, b.physical_blocks_used);
  EXPECT_EQ(a.measured.writes_eliminated, b.measured.writes_eliminated);
  EXPECT_EQ(a.measured.chunks_deduped, b.measured.chunks_deduped);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
  EXPECT_EQ(a.disk_writes, b.disk_writes);
  EXPECT_EQ(a.events_scheduled, b.events_scheduled);
  EXPECT_EQ(a.peak_event_depth, b.peak_event_depth);
}

TEST(ReplayPipeline, MatchesSerialForEveryEngine) {
  const Trace t = small_trace();
  for (EngineKind kind : kAllEngines) {
    SCOPED_TRACE(to_string(kind));
    const ReplayResult serial =
        run_replay(spec_for(kind), t, AdmissionMode::kStreaming,
                   pipeline_off());
    const ReplayResult piped = run_replay(
        spec_for(kind), t, AdmissionMode::kStreaming, pipeline_on());
    expect_identical(serial, piped);
    EXPECT_FALSE(serial.pipeline.enabled);
    EXPECT_TRUE(piped.pipeline.enabled);
    // 3000 requests / 64 per batch, all delivered.
    EXPECT_EQ((t.measured_count() + 63) / 64, piped.pipeline.batches);
  }
}

TEST(ReplayPipeline, DepthOneStillIdentical) {
  const Trace t = small_trace();
  const ReplayResult serial = run_replay(
      spec_for(EngineKind::kPod), t, AdmissionMode::kStreaming, pipeline_off());
  const ReplayResult piped = run_replay(
      spec_for(EngineKind::kPod), t, AdmissionMode::kStreaming, pipeline_on(1));
  expect_identical(serial, piped);
  EXPECT_EQ(1u, piped.pipeline.depth);
}

TEST(ReplayPipeline, MatchesPrescheduledBaseline) {
  const Trace t = small_trace();
  const ReplayResult pre = run_replay(spec_for(EngineKind::kFullDedupe), t,
                                      AdmissionMode::kPrescheduled);
  const ReplayResult piped =
      run_replay(spec_for(EngineKind::kFullDedupe), t,
                 AdmissionMode::kStreaming, pipeline_on());
  EXPECT_EQ(pre.all.count(), piped.all.count());
  EXPECT_DOUBLE_EQ(pre.mean_ms(), piped.mean_ms());
  EXPECT_EQ(pre.makespan, piped.makespan);
  EXPECT_EQ(pre.physical_blocks_used, piped.physical_blocks_used);
}

TEST(ReplayPipeline, StatsTripwires) {
  const Trace t = small_trace();
  const ReplayResult r = run_replay(
      spec_for(EngineKind::kNative), t, AdmissionMode::kStreaming,
      pipeline_on(4));
  EXPECT_TRUE(r.pipeline.enabled);
  EXPECT_EQ(4u, r.pipeline.depth);
  EXPECT_GT(r.pipeline.batches, 0u);
  // Occupancy is sampled per pop and includes the popped batch, so it sits
  // in [1, depth].
  EXPECT_GE(r.pipeline.mean_occupancy, 1.0);
  EXPECT_LE(r.pipeline.mean_occupancy, 4.0);
}

TEST(ReplayPipeline, RejectsUnorderedTraceLikeSerial) {
  WorkloadProfile p = tiny_test_profile();
  p.measured_requests = 100;
  p.warmup_requests = 0;
  Trace t = TraceGenerator(p).generate();
  ASSERT_GE(t.requests.size(), 10u);
  std::swap(t.requests[4].arrival, t.requests[5].arrival);
  if (t.requests[4].arrival == t.requests[5].arrival)
    t.requests[5].arrival = t.requests[4].arrival - 1;
  EXPECT_THROW(run_replay(spec_for(EngineKind::kNative), t,
                          AdmissionMode::kStreaming, pipeline_off()),
               std::runtime_error);
  EXPECT_THROW(run_replay(spec_for(EngineKind::kNative), t,
                          AdmissionMode::kStreaming, pipeline_on()),
               std::runtime_error);
}

// Pipeline inside ParallelRunner workers: each replay gets its own prepare
// thread; results must match the serial single-job run for every engine.
TEST(ReplayPipeline, IdenticalUnderParallelJobs) {
  const Trace t = small_trace();
  std::vector<ParallelRunner::RunItem> items;
  for (EngineKind kind : kAllEngines) items.push_back({spec_for(kind), &t});

  ParallelRunner one_job(1);
  one_job.set_pipeline(pipeline_off());
  ParallelRunner four_jobs(4);
  four_jobs.set_pipeline(pipeline_on());

  const std::vector<ReplayResult> serial = one_job.run(items);
  const std::vector<ReplayResult> piped = four_jobs.run(items);
  ASSERT_EQ(serial.size(), piped.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(to_string(items[i].spec.engine));
    expect_identical(serial[i], piped[i]);
  }
}

// POD_PIPELINE_DEPTH parsing: out-of-range values clamp to [1, 1024],
// malformed values are ignored (both with a logged warning, not silence),
// and well-formed values pass through.
TEST(ReplayPipeline, DepthFromEnvClampsAndRejectsGarbage) {
  const char* saved = std::getenv("POD_PIPELINE_DEPTH");
  const std::string saved_copy = saved ? saved : "";

  const auto depth_for = [](const char* value) {
    setenv("POD_PIPELINE_DEPTH", value, 1);
    return PipelineConfig::from_env().depth;
  };

  EXPECT_EQ(depth_for("16"), 16u);
  EXPECT_EQ(depth_for("1"), 1u);
  EXPECT_EQ(depth_for("1024"), 1024u);
  EXPECT_EQ(depth_for("0"), 1u);        // clamped up
  EXPECT_EQ(depth_for("-5"), 1u);       // clamped up
  EXPECT_EQ(depth_for("99999"), 1024u); // clamped down
  // Malformed: keep the default depth instead of clamping garbage.
  const std::size_t def = PipelineConfig{}.depth;
  EXPECT_EQ(depth_for("fast"), def);
  EXPECT_EQ(depth_for("12abc"), def);
  EXPECT_EQ(depth_for(""), def);

  if (saved)
    setenv("POD_PIPELINE_DEPTH", saved_copy.c_str(), 1);
  else
    unsetenv("POD_PIPELINE_DEPTH");
}

}  // namespace
}  // namespace pod
