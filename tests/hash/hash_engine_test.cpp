#include "hash/hash_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pod {
namespace {

TEST(HashEngine, DefaultLatencyIsPaper32us) {
  HashEngine e;
  EXPECT_EQ(e.latency_for_chunks(1), us(32));
  EXPECT_EQ(e.latency_for_chunks(10), us(320));
  EXPECT_EQ(e.latency_for_chunks(0), 0);
}

TEST(HashEngine, CustomLatency) {
  HashEngineConfig cfg;
  cfg.per_chunk_latency = us(10);
  HashEngine e(cfg);
  EXPECT_EQ(e.latency_for_chunks(3), us(30));
}

TEST(HashEngine, FingerprintCountsChunks) {
  HashEngine e;
  const std::vector<std::uint8_t> chunk(kBlockSize, 0xAB);
  EXPECT_EQ(e.chunks_hashed(), 0u);
  (void)e.fingerprint(chunk);
  (void)e.fingerprint(chunk);
  EXPECT_EQ(e.chunks_hashed(), 2u);
  e.note_chunks_hashed(5);
  EXPECT_EQ(e.chunks_hashed(), 7u);
}

TEST(HashEngine, FingerprintMatchesOfData) {
  HashEngine e;
  const std::vector<std::uint8_t> chunk(128, 0x5A);
  EXPECT_EQ(e.fingerprint(chunk), Fingerprint::of_data(chunk));
}

}  // namespace
}  // namespace pod
