#include "hash/fingerprint.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>
#include <vector>

namespace pod {
namespace {

TEST(Fingerprint, DefaultIsZero) {
  Fingerprint f;
  EXPECT_EQ(f.prefix64(), 0u);
  for (std::uint8_t b : f.bytes()) EXPECT_EQ(b, 0);
}

TEST(Fingerprint, ContentIdIsDeterministic) {
  EXPECT_EQ(Fingerprint::of_content_id(42), Fingerprint::of_content_id(42));
}

TEST(Fingerprint, DistinctContentIdsDistinctFingerprints) {
  std::set<std::uint64_t> prefixes;
  for (std::uint64_t id = 0; id < 10000; ++id)
    prefixes.insert(Fingerprint::of_content_id(id).prefix64());
  EXPECT_EQ(prefixes.size(), 10000u);
}

TEST(Fingerprint, PrefixRoundTrip) {
  // of_prefix(prefix64()) must reproduce the full synthetic fingerprint —
  // the CSV trace format depends on this.
  for (std::uint64_t id : {0ULL, 1ULL, 42ULL, 1ULL << 40, ~0ULL}) {
    const Fingerprint f = Fingerprint::of_content_id(id);
    EXPECT_EQ(Fingerprint::of_prefix(f.prefix64()), f);
  }
}

TEST(Fingerprint, OfDataMatchesSha1Prefix) {
  const std::vector<std::uint8_t> data{'a', 'b', 'c'};
  const Fingerprint f = Fingerprint::of_data(data);
  // SHA-1("abc") = a9993e36 4706816a ba3e2571 7850c26c 9cd0d89d
  EXPECT_EQ(f.hex(), "a9993e364706816aba3e25717850c26c");
}

TEST(Fingerprint, OfDataDistinguishesContent) {
  const std::vector<std::uint8_t> a{1, 2, 3};
  const std::vector<std::uint8_t> b{1, 2, 4};
  EXPECT_NE(Fingerprint::of_data(a), Fingerprint::of_data(b));
}

TEST(Fingerprint, OrderingIsTotal) {
  const Fingerprint a = Fingerprint::of_content_id(1);
  const Fingerprint b = Fingerprint::of_content_id(2);
  EXPECT_TRUE((a < b) || (b < a));
  EXPECT_FALSE(a < a);
}

TEST(Fingerprint, HashUsableInUnorderedSet) {
  std::unordered_set<Fingerprint, FingerprintHash> set;
  for (std::uint64_t id = 0; id < 1000; ++id)
    set.insert(Fingerprint::of_content_id(id));
  EXPECT_EQ(set.size(), 1000u);
  EXPECT_TRUE(set.count(Fingerprint::of_content_id(500)) > 0);
  EXPECT_EQ(set.count(Fingerprint::of_content_id(5000)), 0u);
}

TEST(Fingerprint, StdHashSpecialization) {
  std::unordered_set<Fingerprint> set;
  set.insert(Fingerprint::of_content_id(7));
  EXPECT_EQ(set.size(), 1u);
}

TEST(Fingerprint, HexLength) {
  EXPECT_EQ(Fingerprint::of_content_id(9).hex().size(), 32u);
}

}  // namespace
}  // namespace pod
