// SIMD/scalar equivalence: every vector tier must produce bit-identical
// xx64 digests and identical Rabin boundary decisions on randomized
// buffers, including sub-lane lengths, stripe edges, and unaligned bases.
#include "hash/simd.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dedup/rabin_chunker.hpp"
#include "hash/hash_engine.hpp"
#include "hash/xx64.hpp"

namespace pod {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

std::vector<SimdTier> tiers_to_test() {
  std::vector<SimdTier> tiers{SimdTier::kScalar};
  if (max_hw_simd_tier() >= SimdTier::kSse42) tiers.push_back(SimdTier::kSse42);
  if (max_hw_simd_tier() >= SimdTier::kAvx2) tiers.push_back(SimdTier::kAvx2);
  return tiers;
}

TEST(SimdDispatch, ActiveTierNeverExceedsHardware) {
  EXPECT_LE(static_cast<int>(active_simd_tier()),
            static_cast<int>(max_hw_simd_tier()));
}

TEST(SimdDispatch, TierNamesRoundTrip) {
  EXPECT_STREQ(to_string(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(to_string(SimdTier::kSse42), "sse");
  EXPECT_STREQ(to_string(SimdTier::kAvx2), "avx2");
}

// POD_SIMD contract (parity with the POD_PIPELINE_DEPTH clamp): recognized
// values select (hardware-clamped) tiers; anything else warns and falls
// back to auto-detection, exactly as if the variable were unset.
TEST(SimdDispatch, EnvOverrideParsesAndRejectsGarbage) {
  const char* saved = std::getenv("POD_SIMD");
  const std::string saved_copy = saved ? saved : "";

  const auto tier_for = [](const char* value) {
    setenv("POD_SIMD", value, 1);
    return resolve_simd_tier_from_env();
  };

  unsetenv("POD_SIMD");
  const SimdTier auto_tier = resolve_simd_tier_from_env();

  EXPECT_EQ(tier_for("scalar"), SimdTier::kScalar);
  const SimdTier hw = max_hw_simd_tier();
  EXPECT_EQ(tier_for("sse"),
            hw >= SimdTier::kSse42 ? SimdTier::kSse42 : SimdTier::kScalar);
  EXPECT_LE(static_cast<int>(tier_for("avx2")), static_cast<int>(hw));
  // Malformed: warn, then behave exactly like an unset variable.
  EXPECT_EQ(tier_for("fast"), auto_tier);
  EXPECT_EQ(tier_for("AVX2"), auto_tier);  // values are case-sensitive
  EXPECT_EQ(tier_for("sse42"), auto_tier);
  EXPECT_EQ(tier_for(""), auto_tier);
  EXPECT_EQ(tier_for("2"), auto_tier);

  if (saved)
    setenv("POD_SIMD", saved_copy.c_str(), 1);
  else
    unsetenv("POD_SIMD");
}

// 32-lane control-byte scan: the AVX2 kernel must agree bit-for-bit with
// the scalar reference on randomized ctrl arrays (empties, near-miss tags,
// exact tags) at every alignment.
TEST(CtrlMatch32, MatchesScalarOnRandomCtrlArrays) {
  Rng rng(0x5EED);
  std::uint8_t ctrl[256];
  for (int round = 0; round < 64; ++round) {
    for (auto& b : ctrl) {
      const std::uint64_t r = rng.next();
      // ~1/4 empty lanes; tags land in the nonzero 7-bit range like the
      // tables' ctrl_of mapping.
      b = (r & 3) == 0 ? std::uint8_t{0}
                       : static_cast<std::uint8_t>((r & 0x7F) | 1);
    }
    // Probe with an in-array tag (guaranteed eq bits when nonzero), a fixed
    // tag, and 0x7F (the zero-scramble escape value).
    const std::uint8_t tags[] = {ctrl[rng.uniform(0, 255)], std::uint8_t{0x2A},
                                 std::uint8_t{0x7F}};
    for (const std::uint8_t tag : tags) {
      if (tag == 0) continue;  // empty marker is never probed as a tag
      for (std::size_t off = 0; off + 32 <= sizeof(ctrl); off += 7) {
        const CtrlMatch32 ref = detail::ctrl_match32_scalar(ctrl + off, tag);
        const CtrlMatch32 got = ctrl_match32(ctrl + off, tag);
        ASSERT_EQ(ref.eq, got.eq) << "off=" << off << " tag=" << int(tag);
        ASSERT_EQ(ref.empty, got.empty) << "off=" << off;
        if (max_hw_simd_tier() >= SimdTier::kAvx2) {
          const CtrlMatch32 wide =
              ctrl_match32_tier(SimdTier::kAvx2, ctrl + off, tag);
          ASSERT_EQ(ref.eq, wide.eq) << "off=" << off;
          ASSERT_EQ(ref.empty, wide.empty) << "off=" << off;
        }
      }
    }
  }
}

TEST(CtrlMatch32, WideGroupsTrackActiveTier) {
  EXPECT_EQ(wide_ctrl_groups(), active_simd_tier() == SimdTier::kAvx2);
}

// Lengths 0..3x the widest lane group (3 * 32-byte stripe), plus chunk-size
// cases, at aligned and unaligned base offsets.
TEST(Xx64Bulk, MatchesScalarAcrossLengthsAndAlignment) {
  Rng rng(0xC0FFEE);
  const std::vector<std::uint8_t> buf = random_bytes(rng, 64 * 1024);
  for (SimdTier tier : tiers_to_test()) {
    for (std::size_t len = 0; len <= 96; ++len) {
      for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{7}}) {
        std::uint64_t ref[5], got[5];
        const std::size_t stride = len + 11;  // overlapping-free, unaligned
        for (std::size_t i = 0; i < 5; ++i)
          ref[i] = xx64(buf.data() + off + i * stride, len, 7);
        xx64_bulk_tier(tier, buf.data() + off, stride, len, 5, 7, got);
        ASSERT_EQ(0, std::memcmp(ref, got, sizeof(ref)))
            << to_string(tier) << " len=" << len << " off=" << off;
      }
    }
    // The fingerprinting shape: contiguous 4 KB chunks, stride == len.
    std::uint64_t ref[15], got[15];
    for (std::size_t i = 0; i < 15; ++i)
      ref[i] = xx64(buf.data() + i * 4096, 4096, 0);
    xx64_bulk_tier(tier, buf.data(), 4096, 4096, 15, 0, got);
    ASSERT_EQ(0, std::memcmp(ref, got, sizeof(ref))) << to_string(tier);
  }
}

TEST(Xx64Bulk, DefaultDispatchMatchesScalar) {
  Rng rng(42);
  const std::vector<std::uint8_t> buf = random_bytes(rng, 8192);
  std::uint64_t ref[2], got[2];
  detail::xx64_bulk_scalar(buf.data(), 4096, 4096, 2, 123, ref);
  xx64_bulk(buf.data(), 4096, 4096, 2, 123, got);
  EXPECT_EQ(0, std::memcmp(ref, got, sizeof(ref)));
}

class RabinScanEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    poly_ = 0xB4E6E0A1F7C25C4BULL;
    std::uint64_t pow_w1 = 1;
    for (std::size_t i = 0; i + 1 < kWindow; ++i) pow_w1 *= poly_;
    for (int b = 0; b < 256; ++b) {
      std::uint64_t z = (static_cast<std::uint64_t>(b) + 1) *
                        0x9E3779B97F4A7C15ULL;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      push_[b] = z ^ (z >> 27);
      pop_[b] = push_[b] * pow_w1;
    }
  }

  std::uint64_t window_hash(const std::uint8_t* data, std::size_t pos) const {
    std::uint64_t h = 0;
    for (std::size_t i = pos - kWindow; i < pos; ++i)
      h = h * poly_ + push_[data[i]];
    return h;
  }

  static constexpr std::size_t kWindow = 48;
  std::uint64_t poly_;
  std::uint64_t push_[256];
  std::uint64_t pop_[256];
};

TEST_F(RabinScanEquivalence, MatchesScalarOnRandomBuffers) {
  Rng rng(0xABCD);
  for (int round = 0; round < 8; ++round) {
    const std::vector<std::uint8_t> buf = random_bytes(rng, 4096);
    // Loose masks so matches occur at several densities; the widest mask
    // exercises the no-match-until-limit path.
    for (std::uint64_t mask : {std::uint64_t{0x7}, std::uint64_t{0xFF},
                               std::uint64_t{0x3FFFFF}}) {
      for (std::size_t start : {kWindow, kWindow + 1, kWindow + 2,
                                kWindow + 3, std::size_t{517}}) {
        const std::uint64_t h0 = window_hash(buf.data(), start);
        for (std::size_t limit : {start, start + 1, start + 2, start + 5,
                                  buf.size()}) {
          const RabinScanResult ref = detail::rabin_scan_scalar(
              buf.data(), start, limit, kWindow, h0, mask, poly_, push_, pop_);
          for (SimdTier tier : tiers_to_test()) {
            const RabinScanResult got =
                rabin_scan_tier(tier, buf.data(), start, limit, kWindow, h0,
                                mask, poly_, push_, pop_);
            ASSERT_EQ(ref.found, got.found)
                << to_string(tier) << " mask=" << mask << " start=" << start;
            ASSERT_EQ(ref.pos, got.pos) << to_string(tier);
            ASSERT_EQ(ref.h, got.h) << to_string(tier);
          }
        }
      }
    }
  }
}

TEST_F(RabinScanEquivalence, ImmediateMatchAndLimitStop) {
  const std::vector<std::uint8_t> buf(512, 0x5A);
  // h already matching at the start position returns without scanning.
  const std::uint64_t mask = 0;  // (h & 0) == 0 always
  for (SimdTier tier : tiers_to_test()) {
    const RabinScanResult r = rabin_scan_tier(tier, buf.data(), 100, 400,
                                              kWindow, 7, mask, poly_, push_,
                                              pop_);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(100u, r.pos);
    EXPECT_EQ(7u, r.h);
    // pos == limit: position is still checked, then the scan stops.
    const RabinScanResult stop = rabin_scan_tier(
        tier, buf.data(), 100, 100, kWindow, 1, std::uint64_t{0xFFFF}, poly_,
        push_, pop_);
    EXPECT_FALSE(stop.found);
    EXPECT_EQ(100u, stop.pos);
    EXPECT_EQ(1u, stop.h);
  }
}

// The chunker must produce identical boundaries whichever tier is active;
// run it against a scalar-forced reference implementation of the same loop.
TEST(RabinChunkerSimd, BoundariesMatchScalarReference) {
  Rng rng(0xFEED);
  RabinConfig cfg;
  cfg.min_chunk = 256;
  cfg.max_chunk = 2048;
  cfg.mask_bits = 6;
  cfg.window = 48;
  RabinChunker chunker(cfg);
  HashEngineConfig hc;
  hc.algo = HashEngineConfig::Algo::kXx64;
  HashEngine engine(hc);

  std::vector<std::uint8_t> buf(32 * 1024);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());

  const std::vector<DataChunk> chunks = chunker.chunk(buf, engine);
  ASSERT_FALSE(chunks.empty());
  // Chunks tile the buffer and respect min/max (the final chunk may be
  // short).
  std::size_t expect_off = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(expect_off, chunks[i].offset);
    if (i + 1 < chunks.size()) {
      EXPECT_GE(chunks[i].size, cfg.min_chunk);
      EXPECT_LE(chunks[i].size, cfg.max_chunk);
    }
    expect_off += chunks[i].size;
  }
  EXPECT_EQ(buf.size(), expect_off);

  // Scalar-forced rescan of each boundary: the dispatched cut must be the
  // one the scalar loop would have chosen.
  const std::uint64_t mask = (std::uint64_t{1} << cfg.mask_bits) - 1;
  RabinChunker ref_tables(cfg);  // same tables; use via friend-free rescan
  (void)ref_tables;
  std::size_t start = 0;
  for (const DataChunk& c : chunks) {
    const std::size_t remaining = buf.size() - start;
    if (remaining > cfg.min_chunk) {
      // Recompute the scalar decision directly with chunker-identical
      // tables rebuilt here.
      static constexpr std::uint64_t kPoly = 0xB4E6E0A1F7C25C4BULL;
      std::uint64_t push[256], pop[256];
      std::uint64_t pow_w1 = 1;
      for (std::size_t i = 0; i + 1 < cfg.window; ++i) pow_w1 *= kPoly;
      for (int b = 0; b < 256; ++b) {
        std::uint64_t z = (static_cast<std::uint64_t>(b) + 1) *
                          0x9E3779B97F4A7C15ULL;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        push[b] = z ^ (z >> 27);
        pop[b] = push[b] * pow_w1;
      }
      std::size_t pos = start + cfg.min_chunk;
      std::uint64_t h = 0;
      for (std::size_t i = pos - cfg.window; i < pos; ++i)
        h = h * kPoly + push[buf[i]];
      const std::size_t limit = start + std::min(remaining, cfg.max_chunk);
      const RabinScanResult ref = detail::rabin_scan_scalar(
          buf.data(), pos, limit, cfg.window, h, mask, kPoly, push, pop);
      const std::size_t want =
          ref.found ? ref.pos - start : std::min(remaining, cfg.max_chunk);
      EXPECT_EQ(want, c.size) << "at offset " << start;
    }
    start += c.size;
  }
}

// Bulk fingerprinting through the engine equals per-chunk fingerprinting.
TEST(HashEngineBulk, Xx64BulkEqualsPerChunk) {
  Rng rng(99);
  std::vector<std::uint8_t> buf(17 * 4096);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());

  HashEngineConfig cfg;
  cfg.algo = HashEngineConfig::Algo::kXx64;
  HashEngine engine(cfg);
  std::vector<Fingerprint> bulk(17);
  engine.fingerprint_bulk(buf.data(), 4096, 17, bulk.data());
  for (std::size_t i = 0; i < 17; ++i) {
    const Fingerprint one =
        engine.fingerprint({buf.data() + i * 4096, 4096});
    EXPECT_EQ(one, bulk[i]) << "chunk " << i;
  }
  EXPECT_EQ(34u, engine.chunks_hashed());
}

TEST(HashEngineBulk, Sha1BulkEqualsPerChunk) {
  Rng rng(7);
  std::vector<std::uint8_t> buf(3 * 512);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  HashEngine engine;  // default: SHA-1
  Fingerprint bulk[3];
  engine.fingerprint_bulk(buf.data(), 512, 3, bulk);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(engine.fingerprint({buf.data() + i * 512, 512}), bulk[i]);
}

}  // namespace
}  // namespace pod
