#include "hash/fnv.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pod {
namespace {

std::uint64_t hash_str(const std::string& s) {
  return fnv1a64(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

// Published FNV-1a 64-bit reference values.
TEST(Fnv, EmptyIsOffsetBasis) {
  EXPECT_EQ(hash_str(""), 0xCBF29CE484222325ULL);
}

TEST(Fnv, SingleA) {
  EXPECT_EQ(hash_str("a"), 0xAF63DC4C8601EC8CULL);
}

TEST(Fnv, Foobar) {
  EXPECT_EQ(hash_str("foobar"), 0x85944171F73967E8ULL);
}

TEST(Fnv, ConstexprUsable) {
  constexpr std::uint8_t data[] = {'a'};
  constexpr std::uint64_t h = fnv1a64(data, 1);
  static_assert(h == 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(h, 0xAF63DC4C8601EC8CULL);
}

TEST(Fnv, SeedChaining) {
  // Hashing "ab" in one go equals hashing "b" seeded with hash("a").
  const std::uint64_t ha = hash_str("a");
  const std::uint8_t b = 'b';
  EXPECT_EQ(fnv1a64(&b, 1, ha), hash_str("ab"));
}

TEST(Fnv, U64MixerIsDeterministicAndSpreads) {
  const std::uint64_t h1 = fnv1a64_u64(1);
  const std::uint64_t h2 = fnv1a64_u64(2);
  EXPECT_EQ(h1, fnv1a64_u64(1));
  EXPECT_NE(h1, h2);
  EXPECT_GT(__builtin_popcountll(h1 ^ h2), 8);
}

}  // namespace
}  // namespace pod
