#include "hash/sha1.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pod {
namespace {

std::string hash_hex(const std::string& s) {
  return Sha1::hex(Sha1::hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size())));
}

// FIPS 180-1 / RFC 3174 reference vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(hash_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hash_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 s;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i)
    s.update(chunk.data(), chunk.size());
  EXPECT_EQ(Sha1::hex(s.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(hash_hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string msg = "hello world, this is an incremental hashing test";
  Sha1 inc;
  for (char c : msg) inc.update(&c, 1);
  EXPECT_EQ(Sha1::hex(inc.finalize()), hash_hex(msg));
}

TEST(Sha1, SplitAtBlockBoundaries) {
  std::string msg(200, 'x');
  for (std::size_t split : {1u, 63u, 64u, 65u, 127u, 128u, 199u}) {
    Sha1 s;
    s.update(msg.data(), split);
    s.update(msg.data() + split, msg.size() - split);
    EXPECT_EQ(Sha1::hex(s.finalize()), hash_hex(msg)) << "split=" << split;
  }
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 s;
  s.update("abc", 3);
  (void)s.finalize();
  s.reset();
  s.update("abc", 3);
  EXPECT_EQ(Sha1::hex(s.finalize()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, ExactBlockLengthMessage) {
  const std::string msg(64, 'b');
  Sha1 s;
  s.update(msg.data(), msg.size());
  // Verified against a second incremental computation (property: stable).
  const std::string d1 = Sha1::hex(s.finalize());
  EXPECT_EQ(d1, hash_hex(msg));
}

TEST(Sha1, DifferentInputsDiffer) {
  EXPECT_NE(hash_hex("a"), hash_hex("b"));
  EXPECT_NE(hash_hex("abc"), hash_hex("abd"));
}

}  // namespace
}  // namespace pod
