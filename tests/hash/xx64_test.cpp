#include "hash/xx64.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace pod {
namespace {

std::uint64_t hash_str(const std::string& s, std::uint64_t seed = 0) {
  return xx64(reinterpret_cast<const std::uint8_t*>(s.data()), s.size(), seed);
}

// Reference values from the canonical XXH64 implementation.
TEST(Xx64, EmptyInput) {
  EXPECT_EQ(hash_str(""), 0xEF46DB3751D8E999ULL);
}

TEST(Xx64, EmptyInputWithSeedDiffers) {
  EXPECT_NE(hash_str("", 1), hash_str("", 0));
  EXPECT_EQ(hash_str("", 1), hash_str("", 1));
}

TEST(Xx64, SingleChar) {
  EXPECT_EQ(hash_str("a"), 0xD24EC4F1A98C6E5BULL);
}

TEST(Xx64, Abc) {
  EXPECT_EQ(hash_str("abc"), 0x44BC2CF5AD770999ULL);
}

TEST(Xx64, LongerAscii) {
  EXPECT_EQ(hash_str("xxhash is a fast non-cryptographic hash algorithm"),
            hash_str("xxhash is a fast non-cryptographic hash algorithm"));
  EXPECT_NE(hash_str("xxhash is a fast non-cryptographic hash algorithm"),
            hash_str("xxhash is a fast non-cryptographic hash algorithX"));
}

TEST(Xx64, SeedChangesOutput) {
  EXPECT_NE(hash_str("payload", 0), hash_str("payload", 1));
}

TEST(Xx64, AllLengthPaths) {
  // Exercise <4, 4-7, 8-31, and >=32 byte code paths; values must be stable
  // and length-sensitive.
  std::vector<std::uint64_t> seen;
  std::string data(100, '\0');
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<char>(i * 7 + 1);
  for (std::size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 16u, 31u, 32u, 33u, 63u,
                          64u, 100u}) {
    const std::uint64_t h =
        xx64(reinterpret_cast<const std::uint8_t*>(data.data()), len);
    for (std::uint64_t prev : seen) EXPECT_NE(h, prev) << "len=" << len;
    seen.push_back(h);
  }
}

TEST(Xx64, AvalancheOnSingleBitFlip) {
  std::string a(40, 'q');
  std::string b = a;
  b[20] ^= 1;
  const std::uint64_t ha = hash_str(a), hb = hash_str(b);
  // Count differing bits; a good hash flips roughly half.
  const int diff = __builtin_popcountll(ha ^ hb);
  EXPECT_GT(diff, 10);
  EXPECT_LT(diff, 54);
}

}  // namespace
}  // namespace pod
