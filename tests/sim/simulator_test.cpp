#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pod {
namespace {

TEST(Simulator, StartsAtZeroIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, TimeAdvancesToEventTimestamps) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.schedule_at(100, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(50, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{50, 100}));
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = -1;
  sim.schedule_at(10, [&] {
    sim.schedule_after(5, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 15);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&]() {
    ++count;
    if (count < 10) sim.schedule_after(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.now(), 9);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesIdleClock) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ResetRestoresInitialState) {
  Simulator sim;
  sim.schedule_at(5, [] {});
  sim.run();
  sim.reset();
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorDeathTest, SchedulingInPastAborts) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(50, [] {}), "POD_CHECK");
}

}  // namespace
}  // namespace pod
