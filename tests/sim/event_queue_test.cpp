#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace pod {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBrokenByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.push(42, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(100, [] {});
  q.push(50, [] {});
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.push(77, [] {});
  auto [at, fn] = q.pop();
  EXPECT_EQ(at, 77);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  // Tie-break sequence restarts after clear.
  std::vector<int> order;
  q.push(5, [&] { order.push_back(1); });
  q.push(5, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&] { order.push_back(10); });
  q.push(30, [&] { order.push_back(30); });
  q.pop().second();
  q.push(20, [&] { order.push_back(20); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

// Regression: same-timestamp events pushed across pop boundaries must
// still drain in global insertion order — the tie-break sequence may not
// reset or reorder when the heap shrinks and regrows (slot recycling).
TEST(EventQueue, TiesStableAcrossInterleavedPushPop) {
  EventQueue q;
  std::vector<int> order;
  q.push(5, [&] { order.push_back(0); });
  q.push(5, [&] { order.push_back(1); });
  q.pop().second();  // runs 0; its slot is recycled
  q.push(5, [&] { order.push_back(2); });
  q.push(5, [&] { order.push_back(3); });
  q.pop().second();  // runs 1
  q.push(5, [&] { order.push_back(4); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// Regression: randomized-shape churn with equal timestamps — every batch
// must drain strictly FIFO no matter how pushes and pops interleave.
TEST(EventQueue, FifoUnderChurn) {
  EventQueue q;
  std::vector<int> order;
  int next = 0;
  // Deterministic interleavings: push k events, pop k-1, repeat.
  for (int k = 1; k <= 32; ++k) {
    for (int i = 0; i < k; ++i) {
      q.push(7, [&order, v = next] { order.push_back(v); });
      ++next;
    }
    for (int i = 0; i + 1 < k; ++i) q.pop().second();
  }
  while (!q.empty()) q.pop().second();
  std::vector<int> expected(static_cast<std::size_t>(next));
  for (int i = 0; i < next; ++i) expected[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(order, expected);
}

// Callables bigger than the inline buffer take the heap path; both paths
// must move correctly through slot recycling.
TEST(EventQueue, LargeCallablesSurviveRecycling) {
  EventQueue q;
  std::vector<std::uint64_t> seen;
  struct Big {
    std::uint64_t payload[24];  // 192 bytes — exceeds the inline buffer
    std::vector<std::uint64_t>* out;
    void operator()() const { out->push_back(payload[23]); }
  };
  for (std::uint64_t i = 0; i < 100; ++i) {
    Big big{};
    big.payload[23] = i;
    big.out = &seen;
    q.push(static_cast<SimTime>(i % 3), big);
    if (i % 2 == 1) q.pop().second();
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(seen.size(), 100u);
  std::uint64_t sum = 0;
  for (std::uint64_t v : seen) sum += v;
  EXPECT_EQ(sum, 99u * 100u / 2);
}

}  // namespace
}  // namespace pod
