#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pod {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBrokenByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.push(42, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(100, [] {});
  q.push(50, [] {});
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.push(77, [] {});
  auto [at, fn] = q.pop();
  EXPECT_EQ(at, 77);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  // Tie-break sequence restarts after clear.
  std::vector<int> order;
  q.push(5, [&] { order.push_back(1); });
  q.push(5, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&] { order.push_back(10); });
  q.push(30, [&] { order.push_back(30); });
  q.pop().second();
  q.push(20, [&] { order.push_back(20); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

}  // namespace
}  // namespace pod
