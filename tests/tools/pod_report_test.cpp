// pod_report golden test: a fixed POD_BENCH_JSON capture must render to
// exactly this markdown (the report is consumed by humans and CI diffs, so
// format drift should be a deliberate, reviewed change).
#include "pod_report/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace pod::report {
namespace {

constexpr const char* kCapture =
    R"({"trace":"t1","engine":"native","mean_ms":2.0,"anatomy":{"requests":10,)"
    R"("sum_mismatches":0,"tail_k":2,"components":{)"
    R"("queue_wait":{"total_ms":10,"mean_ms":1.0,"p50_ms":1,"p95_ms":1,"p99_ms":1,"max_ms":1},)"
    R"("seek":{"total_ms":5,"mean_ms":0.5,"p50_ms":0.5,"p95_ms":0.5,"p99_ms":0.5,"max_ms":0.5},)"
    R"("rotation":{"total_ms":2.5,"mean_ms":0.25,"p50_ms":0.25,"p95_ms":0.25,"p99_ms":0.25,"max_ms":0.25},)"
    R"("transfer":{"total_ms":2.5,"mean_ms":0.25,"p50_ms":0.25,"p95_ms":0.25,"p99_ms":0.25,"max_ms":0.25}},)"
    R"("streams":[{"stream":0,"reads":5,"writes":5,"read_blocks":5,"write_blocks":5,)"
    R"("dedup_hits":0,"failed_requests":0,"mean_ms":2,"p50_ms":2,"p95_ms":3,"p99_ms":4,"max_ms":4}],)"
    R"("tail":[{"req_id":7,"stream":0,"type":"W","nblocks":8,"submit_ms":1,"latency_ms":4,)"
    R"("components":{"queue_wait":3,"seek":0.5,"rotation":0.25,"transfer":0.25}}]}})"
    "\n";

constexpr const char* kGolden = R"(# POD bench report

## t1

| engine | mean ms | vs native |
|---|---|---|
| native | 2.000 | 100.0% |

Mean milliseconds per request by component (rows sum to the engine's mean response time):

| engine | queue_wait | seek | rotation | transfer | dedup_meta | raid_reconstruct | fault_retry | journal |
|---|---|---|---|---|---|---|---|---|
| native | 1.000 | 0.500 | 0.250 | 0.250 | - | - | - | - |

Per-stream accounting — native:

| stream | reads | writes | dedup hits | failed | mean ms | p95 ms | p99 ms |
|---|---|---|---|---|---|---|---|
| 0 | 5 | 5 | 0 | 0 | 2.000 | 3.000 | 4.000 |

Tail anatomy — native (slowest 1 of 1 retained):

| req | op | blocks | stream | latency ms | queue_wait | seek | rotation | transfer | dedup_meta | raid_reconstruct | fault_retry | journal |
|---|---|---|---|---|---|---|---|---|---|---|---|---|
| 7 | W | 8 | 0 | 4.000 | 3.000 | 0.500 | 0.250 | 0.250 | - | - | - | - |

)";

TEST(PodReport, GoldenRender) {
  std::stringstream in(kCapture);
  const auto runs = load_jsonl(in);
  ASSERT_EQ(runs.size(), 1u);
  std::stringstream out;
  render(out, runs);
  EXPECT_EQ(out.str(), kGolden);
}

TEST(PodReport, CompareReportsPairedMedianDelta) {
  std::stringstream base_in(
      "{\"trace\":\"t1\",\"engine\":\"native\",\"mean_ms\":2.0}\n"
      "{\"trace\":\"t1\",\"engine\":\"native\",\"mean_ms\":4.0}\n");
  std::stringstream cur_in(
      "{\"trace\":\"t1\",\"engine\":\"native\",\"mean_ms\":1.5}\n"
      "{\"trace\":\"t1\",\"engine\":\"native\",\"mean_ms\":3.0}\n");
  const auto base = load_jsonl(base_in);
  const auto cur = load_jsonl(cur_in);
  std::stringstream out;
  render_compare(out, base, cur);
  // Both pairs improve by exactly 25%: the paired median is -25.0%.
  EXPECT_NE(out.str().find("| t1 | native | 2 | 3.000 | 2.250 | -25.0% |"),
            std::string::npos)
      << out.str();
}

TEST(PodReport, RunsWithoutAnatomyRenderResponseTableOnly) {
  std::stringstream in(
      "{\"trace\":\"t1\",\"engine\":\"native\",\"mean_ms\":2.0}\n"
      "{\"trace\":\"t1\",\"engine\":\"pod\",\"mean_ms\":1.0}\n");
  std::stringstream out;
  render(out, load_jsonl(in));
  const std::string text = out.str();
  EXPECT_NE(text.find("| pod | 1.000 | 50.0% |"), std::string::npos);
  EXPECT_EQ(text.find("component"), std::string::npos);
}

TEST(PodReport, MalformedLineThrowsWithLineNumber) {
  std::stringstream in("{\"trace\":\"t1\",\"engine\":\"native\"}\n{oops\n");
  try {
    load_jsonl(in);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(PodReport, EmptyCapture) {
  std::stringstream in("\n\n");
  std::stringstream out;
  render(out, load_jsonl(in));
  EXPECT_NE(out.str().find("No runs"), std::string::npos);
}

}  // namespace
}  // namespace pod::report
