#include "dedup/categorizer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pod {
namespace {

ChunkDup dup(Pba pba) { return ChunkDup{true, pba}; }
ChunkDup fresh() { return ChunkDup{false, kInvalidPba}; }

TEST(FindDupRuns, EmptyInput) {
  EXPECT_TRUE(find_dup_runs({}).empty());
}

TEST(FindDupRuns, AllFresh) {
  std::vector<ChunkDup> chunks{fresh(), fresh(), fresh()};
  EXPECT_TRUE(find_dup_runs(chunks).empty());
}

TEST(FindDupRuns, SingleSequentialRun) {
  std::vector<ChunkDup> chunks{dup(100), dup(101), dup(102)};
  const auto runs = find_dup_runs(chunks);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].begin, 0u);
  EXPECT_EQ(runs[0].length, 3u);
  EXPECT_EQ(runs[0].pba_start, 100u);
}

TEST(FindDupRuns, NonSequentialPbasSplitRuns) {
  std::vector<ChunkDup> chunks{dup(100), dup(200), dup(201)};
  const auto runs = find_dup_runs(chunks);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].length, 1u);
  EXPECT_EQ(runs[1].begin, 1u);
  EXPECT_EQ(runs[1].length, 2u);
}

TEST(FindDupRuns, FreshGapsSplitRuns) {
  std::vector<ChunkDup> chunks{dup(100), fresh(), dup(101)};
  const auto runs = find_dup_runs(chunks);
  ASSERT_EQ(runs.size(), 2u);
}

TEST(Categorize, UniqueRequest) {
  std::vector<ChunkDup> chunks{fresh(), fresh()};
  const auto c = categorize(chunks, 3);
  EXPECT_EQ(c.category, WriteCategory::kUnique);
  EXPECT_TRUE(c.dedup_runs.empty());
  EXPECT_EQ(c.redundant_chunks, 0u);
}

TEST(Categorize, FullySequentialIsCategory1) {
  std::vector<ChunkDup> chunks{dup(50), dup(51), dup(52), dup(53)};
  const auto c = categorize(chunks, 3);
  EXPECT_EQ(c.category, WriteCategory::kFullSequential);
  ASSERT_EQ(c.dedup_runs.size(), 1u);
  EXPECT_EQ(c.dedup_runs[0].length, 4u);
}

TEST(Categorize, SmallFullyRedundantStillCategory1) {
  // No minimum length for category 1 — eliminating small fully redundant
  // writes is POD's key advantage over iDedup.
  std::vector<ChunkDup> chunks{dup(9)};
  const auto c = categorize(chunks, 3);
  EXPECT_EQ(c.category, WriteCategory::kFullSequential);
  ASSERT_EQ(c.dedup_runs.size(), 1u);
}

TEST(Categorize, FullyRedundantButScatteredIsNotCategory1) {
  // All chunks redundant but the copies are not sequential on disk:
  // deduplicating would fragment reads, so no category-1 elimination.
  std::vector<ChunkDup> chunks{dup(10), dup(500), dup(900)};
  const auto c = categorize(chunks, 3);
  EXPECT_EQ(c.category, WriteCategory::kPartialBelow);
  EXPECT_TRUE(c.dedup_runs.empty());
  EXPECT_EQ(c.redundant_chunks, 3u);
}

TEST(Categorize, ScatteredFewDupsIsCategory2) {
  std::vector<ChunkDup> chunks{dup(10), fresh(), fresh(), dup(700), fresh()};
  const auto c = categorize(chunks, 3);
  EXPECT_EQ(c.category, WriteCategory::kPartialBelow);
  EXPECT_TRUE(c.dedup_runs.empty());
}

TEST(Categorize, LongRunIsCategory3) {
  std::vector<ChunkDup> chunks{fresh(), dup(100), dup(101), dup(102), fresh()};
  const auto c = categorize(chunks, 3);
  EXPECT_EQ(c.category, WriteCategory::kPartialAbove);
  ASSERT_EQ(c.dedup_runs.size(), 1u);
  EXPECT_EQ(c.dedup_runs[0].begin, 1u);
  EXPECT_EQ(c.dedup_runs[0].length, 3u);
}

TEST(Categorize, RunBelowThresholdIsCategory2) {
  std::vector<ChunkDup> chunks{fresh(), dup(100), dup(101), fresh()};
  const auto c = categorize(chunks, 3);
  EXPECT_EQ(c.category, WriteCategory::kPartialBelow);
}

TEST(Categorize, MixedRunsOnlyQualifyingSelected) {
  std::vector<ChunkDup> chunks{dup(10), dup(11),            // run of 2: too short
                               fresh(),
                               dup(200), dup(201), dup(202),  // run of 3: selected
                               fresh(), dup(999)};            // run of 1
  const auto c = categorize(chunks, 3);
  EXPECT_EQ(c.category, WriteCategory::kPartialAbove);
  ASSERT_EQ(c.dedup_runs.size(), 1u);
  EXPECT_EQ(c.dedup_runs[0].begin, 3u);
  EXPECT_EQ(c.redundant_chunks, 6u);
}

TEST(Categorize, ThresholdOneSelectsEverySingleton) {
  std::vector<ChunkDup> chunks{dup(10), fresh(), dup(700)};
  const auto c = categorize(chunks, 1);
  EXPECT_EQ(c.category, WriteCategory::kPartialAbove);
  EXPECT_EQ(c.dedup_runs.size(), 2u);
}

TEST(Categorize, ThresholdSweepMonotonic) {
  // Property: raising the threshold never increases deduplicated chunks.
  std::vector<ChunkDup> chunks;
  for (int i = 0; i < 16; ++i) {
    if (i % 5 == 0) chunks.push_back(fresh());
    else chunks.push_back(dup(1000 + static_cast<Pba>(i)));
  }
  std::size_t prev = SIZE_MAX;
  for (std::size_t th = 1; th <= 6; ++th) {
    const auto c = categorize(chunks, th);
    std::size_t selected = 0;
    for (const auto& r : c.dedup_runs) selected += r.length;
    EXPECT_LE(selected, prev);
    prev = selected;
  }
}

TEST(Categorize, ToStringNames) {
  EXPECT_STREQ(to_string(WriteCategory::kUnique), "unique");
  EXPECT_STREQ(to_string(WriteCategory::kFullSequential), "full-sequential");
  EXPECT_STREQ(to_string(WriteCategory::kPartialBelow),
               "partial-below-threshold");
  EXPECT_STREQ(to_string(WriteCategory::kPartialAbove),
               "partial-above-threshold");
}

}  // namespace
}  // namespace pod
