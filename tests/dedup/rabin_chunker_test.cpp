#include "dedup/rabin_chunker.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace pod {
namespace {

std::vector<std::uint8_t> random_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

TEST(RabinChunker, ChunksCoverInputExactly) {
  HashEngine engine;
  RabinChunker c;
  const auto data = random_data(200 * 1024, 1);
  const auto chunks = c.chunk(data, engine);
  ASSERT_FALSE(chunks.empty());
  std::size_t pos = 0;
  for (const auto& ch : chunks) {
    EXPECT_EQ(ch.offset, pos);
    pos += ch.size;
  }
  EXPECT_EQ(pos, data.size());
}

TEST(RabinChunker, RespectsMinMaxBounds) {
  HashEngine engine;
  RabinChunker c;
  const auto data = random_data(500 * 1024, 2);
  const auto chunks = c.chunk(data, engine);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].size, c.config().min_chunk);
    EXPECT_LE(chunks[i].size, c.config().max_chunk);
  }
}

TEST(RabinChunker, AverageNearTarget) {
  HashEngine engine;
  RabinChunker c;
  const auto data = random_data(4 * 1024 * 1024, 3);
  const auto chunks = c.chunk(data, engine);
  const double avg = static_cast<double>(data.size()) / chunks.size();
  // Expected ~ min_chunk + 2^mask_bits = 2 KB + 4 KB = 6 KB; allow slack.
  EXPECT_GT(avg, 3.0 * 1024);
  EXPECT_LT(avg, 12.0 * 1024);
}

TEST(RabinChunker, DeterministicBoundaries) {
  HashEngine engine;
  RabinChunker c;
  const auto data = random_data(256 * 1024, 4);
  const auto a = c.chunk(data, engine);
  const auto b = c.chunk(data, engine);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].fp, b[i].fp);
  }
}

TEST(RabinChunker, BoundariesShiftInvariant) {
  // The defining CDC property: prepending data realigns chunk boundaries
  // after at most one chunk, so most chunks (by content) are preserved.
  HashEngine engine;
  RabinChunker c;
  const auto base = random_data(512 * 1024, 5);
  std::vector<std::uint8_t> shifted = random_data(1000, 6);
  shifted.insert(shifted.end(), base.begin(), base.end());

  const auto a = c.chunk(base, engine);
  const auto b = c.chunk(shifted, engine);

  std::set<Fingerprint> fps_a;
  for (const auto& ch : a) fps_a.insert(ch.fp);
  std::size_t shared = 0;
  for (const auto& ch : b)
    if (fps_a.count(ch.fp)) ++shared;
  // Most chunks of the shifted stream should reappear.
  EXPECT_GT(shared * 2, a.size());
}

TEST(RabinChunker, ShortInputSingleChunk) {
  HashEngine engine;
  RabinChunker c;
  const auto data = random_data(1000, 7);  // below min_chunk
  const auto chunks = c.chunk(data, engine);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].size, 1000u);
}

TEST(RabinChunker, EmptyInput) {
  HashEngine engine;
  RabinChunker c;
  EXPECT_TRUE(c.chunk({}, engine).empty());
}

TEST(RabinChunkerDeathTest, RejectsBadConfig) {
  RabinConfig bad;
  bad.min_chunk = 8;  // < window
  EXPECT_DEATH(RabinChunker{bad}, "POD_CHECK");
}

}  // namespace
}  // namespace pod
