// CdcStore: append-only variable-size-chunk ingest over the BlockStore
// extent APIs — dedup correctness, space accounting, intra-object
// duplicates, and bulk/scalar cache-path equivalence.
#include "dedup/cdc_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"

namespace pod {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

CdcConfig small_config(ChunkingMode mode) {
  CdcConfig cfg;
  cfg.chunking.mode = mode;
  cfg.hash.algo = HashEngineConfig::Algo::kXx64;
  cfg.logical_blocks = 64 * 1024;  // 256 MB logical space
  cfg.index_cache_bytes = 1 * kMiB;
  cfg.ghost_bytes = 256 * 1024;
  return cfg;
}

TEST(CdcStore, IdenticalObjectFullyDedupes) {
  Rng rng(1);
  const auto obj = random_bytes(300 * 1000, rng);
  for (const ChunkingMode mode : {ChunkingMode::kFixed, ChunkingMode::kCdc}) {
    SCOPED_TRACE(to_string(mode));
    CdcStore store(small_config(mode));
    ASSERT_TRUE(store.ingest({obj.data(), obj.size()}));
    const CdcStats after_first = store.stats();
    EXPECT_EQ(after_first.deduped_chunks, 0u);
    EXPECT_EQ(after_first.unique_chunks, after_first.chunks);

    ASSERT_TRUE(store.ingest({obj.data(), obj.size()}));
    const CdcStats s = store.stats();
    // Second copy: every chunk deduplicates, nothing new is stored.
    EXPECT_EQ(s.objects, 2u);
    EXPECT_EQ(s.deduped_chunks, s.chunks - after_first.chunks);
    EXPECT_EQ(s.stored_bytes, after_first.stored_bytes);
    EXPECT_EQ(s.unique_chunks, after_first.unique_chunks);
    EXPECT_GT(s.dedup_ratio(), 1.5);
  }
}

TEST(CdcStore, IntraObjectDuplicatesDedupe) {
  // One object = the same 64 KB segment three times: the 2nd and 3rd
  // copies duplicate chunks placed earlier in the SAME object (the index
  // cannot know them yet — the pending map must catch them).
  Rng rng(2);
  const auto segment = random_bytes(64 * 1024, rng);
  std::vector<std::uint8_t> obj;
  for (int i = 0; i < 3; ++i)
    obj.insert(obj.end(), segment.begin(), segment.end());

  CdcStore store(small_config(ChunkingMode::kFixed));
  ASSERT_TRUE(store.ingest({obj.data(), obj.size()}));
  const CdcStats s = store.stats();
  // 48 fixed 4 KB chunks; 16 unique (first copy), 32 deduped.
  EXPECT_EQ(s.chunks, 48u);
  EXPECT_EQ(s.unique_chunks, 16u);
  EXPECT_EQ(s.deduped_chunks, 32u);
}

TEST(CdcStore, InsertionShiftedVersionStillDedupesUnderCdc) {
  // A 1 KB insertion at the front shifts every downstream byte. Fixed
  // chunking loses all alignment; CDC re-synchronises after ~1 chunk.
  Rng rng(3);
  const auto base = random_bytes(400 * 1000, rng);
  std::vector<std::uint8_t> shifted = random_bytes(1024, rng);
  shifted.insert(shifted.end(), base.begin(), base.end());

  CdcStore fixed(small_config(ChunkingMode::kFixed));
  ASSERT_TRUE(fixed.ingest({base.data(), base.size()}));
  ASSERT_TRUE(fixed.ingest({shifted.data(), shifted.size()}));

  CdcStore cdc(small_config(ChunkingMode::kCdc));
  ASSERT_TRUE(cdc.ingest({base.data(), base.size()}));
  ASSERT_TRUE(cdc.ingest({shifted.data(), shifted.size()}));

  // Fixed: second version shares essentially nothing (random data, new
  // alignment). CDC: nearly everything after the insertion dedupes.
  EXPECT_LT(fixed.stats().deduped_bytes, base.size() / 10);
  EXPECT_GT(cdc.stats().deduped_bytes, base.size() * 7 / 10);
}

TEST(CdcStore, ScalarAndBulkCachePathsAgree) {
  Rng rng(4);
  // Versioned corpus with edits so the index cache sees hits, misses,
  // evictions and ghost traffic on both paths.
  std::vector<std::vector<std::uint8_t>> objects;
  auto current = random_bytes(200 * 1000, rng);
  objects.push_back(current);
  for (int v = 0; v < 6; ++v) {
    for (int e = 0; e < 4; ++e) {
      const std::size_t at = static_cast<std::size_t>(
          rng.uniform(0, current.size() - 129));
      for (std::size_t i = 0; i < 128; ++i)
        current[at + i] = static_cast<std::uint8_t>(rng.next());
    }
    objects.push_back(current);
  }

  for (const ChunkingMode mode : {ChunkingMode::kFixed, ChunkingMode::kCdc}) {
    SCOPED_TRACE(to_string(mode));
    CdcConfig bulk_cfg = small_config(mode);  // fused_probes default: fused
    bulk_cfg.index_cache_bytes = 8 * 1024;  // tight: force evictions
    CdcConfig batch_cfg = bulk_cfg;
    batch_cfg.fused_probes = false;  // the two-phase lookup_batch pass
    CdcConfig scalar_cfg = bulk_cfg;
    scalar_cfg.scalar_probes = true;

    CdcStore bulk(bulk_cfg), batch(batch_cfg), scalar(scalar_cfg);
    for (const auto& obj : objects) {
      ASSERT_TRUE(bulk.ingest({obj.data(), obj.size()}));
      ASSERT_TRUE(batch.ingest({obj.data(), obj.size()}));
      ASSERT_TRUE(scalar.ingest({obj.data(), obj.size()}));
    }
    const CdcStats b = bulk.stats(), s = scalar.stats(), t = batch.stats();
    EXPECT_EQ(t.chunks, s.chunks);
    EXPECT_EQ(t.unique_chunks, s.unique_chunks);
    EXPECT_EQ(t.deduped_chunks, s.deduped_chunks);
    EXPECT_EQ(t.stored_bytes, s.stored_bytes);
    EXPECT_EQ(t.stale_hits, s.stale_hits);
    EXPECT_EQ(batch.cursor_blocks(), scalar.cursor_blocks());
    EXPECT_EQ(b.chunks, s.chunks);
    EXPECT_EQ(b.unique_chunks, s.unique_chunks);
    EXPECT_EQ(b.deduped_chunks, s.deduped_chunks);
    EXPECT_EQ(b.stored_bytes, s.stored_bytes);
    EXPECT_EQ(b.padding_bytes, s.padding_bytes);
    EXPECT_EQ(b.deduped_bytes, s.deduped_bytes);
    EXPECT_EQ(b.stale_hits, s.stale_hits);
    EXPECT_EQ(bulk.cursor_blocks(), scalar.cursor_blocks());
    // And the physical stores agree block for block.
    EXPECT_EQ(bulk.store().live_physical_blocks(),
              scalar.store().live_physical_blocks());
    EXPECT_EQ(bulk.store().live_logical_blocks(),
              scalar.store().live_logical_blocks());
  }
}

TEST(CdcStore, AccountingInvariants) {
  Rng rng(6);
  CdcStore store(small_config(ChunkingMode::kCdc));
  for (int i = 0; i < 4; ++i) {
    const auto obj = random_bytes(100 * 1000 + i * 7919, rng);
    ASSERT_TRUE(store.ingest({obj.data(), obj.size()}));
  }
  const CdcStats s = store.stats();
  EXPECT_EQ(s.unique_chunks + s.deduped_chunks, s.chunks);
  EXPECT_EQ(s.stored_bytes + s.deduped_bytes, s.logical_bytes);
  // Physical footprint is block-rounded: padding completes the last block
  // of each stored chunk.
  EXPECT_EQ((s.stored_bytes + s.padding_bytes) % kBlockSize, 0u);
  EXPECT_EQ(bytes_to_blocks(s.stored_bytes + s.padding_bytes),
            store.store().live_physical_blocks());
  EXPECT_EQ(s.modelled_cpu, static_cast<Duration>(s.chunks) * us(32));
}

TEST(CdcStore, RefusesOverflowWithoutMutating) {
  Rng rng(7);
  CdcConfig cfg = small_config(ChunkingMode::kFixed);
  cfg.logical_blocks = 8;  // 32 KB space
  CdcStore store(cfg);
  const auto small = random_bytes(4 * 4096, rng);
  ASSERT_TRUE(store.ingest({small.data(), small.size()}));
  const CdcStats before = store.stats();
  const auto big = random_bytes(8 * 4096, rng);
  EXPECT_FALSE(store.ingest({big.data(), big.size()}));
  const CdcStats after = store.stats();
  EXPECT_EQ(after.objects, before.objects);
  EXPECT_EQ(after.chunks, before.chunks);
  EXPECT_EQ(store.cursor_blocks(), 4u);
}

}  // namespace
}  // namespace pod
