#include "dedup/ondisk_index.hpp"

#include <gtest/gtest.h>

namespace pod {
namespace {

Fingerprint fp(std::uint64_t id) { return Fingerprint::of_content_id(id); }

OnDiskIndex::Config small_cfg() {
  OnDiskIndex::Config cfg;
  cfg.region_start = 10000;
  cfg.region_blocks = 256;
  cfg.insert_batch = 4;
  cfg.bloom_bits = 1 << 16;
  return cfg;
}

TEST(OnDiskIndex, MissWithoutInsertIsBloomNegative) {
  OnDiskIndex idx(small_cfg());
  const auto l = idx.lookup(fp(1));
  EXPECT_FALSE(l.found);
  EXPECT_FALSE(l.needs_disk_read);
  EXPECT_EQ(idx.bloom_negative_hits(), 1u);
  EXPECT_EQ(idx.disk_lookups(), 0u);
}

TEST(OnDiskIndex, InsertThenLookupNeedsDiskRead) {
  OnDiskIndex idx(small_cfg());
  (void)idx.insert(fp(1), 42);
  const auto l = idx.lookup(fp(1));
  EXPECT_TRUE(l.found);
  EXPECT_EQ(l.pba, 42u);
  EXPECT_TRUE(l.needs_disk_read);
  EXPECT_GE(l.bucket, small_cfg().region_start);
  EXPECT_LT(l.bucket, small_cfg().region_start + small_cfg().region_blocks);
  EXPECT_EQ(idx.disk_lookups(), 1u);
}

TEST(OnDiskIndex, BucketDeterministic) {
  OnDiskIndex idx(small_cfg());
  EXPECT_EQ(idx.bucket_of(fp(7)), idx.bucket_of(fp(7)));
}

TEST(OnDiskIndex, InsertBatchingChargesPeriodicWrites) {
  OnDiskIndex idx(small_cfg());  // batch = 4
  int flushes = 0;
  for (std::uint64_t i = 0; i < 12; ++i)
    if (idx.insert(fp(i), i)) ++flushes;
  EXPECT_EQ(flushes, 3);
  EXPECT_EQ(idx.bucket_writes(), 3u);
}

TEST(OnDiskIndex, EraseRemovesEntry) {
  OnDiskIndex idx(small_cfg());
  (void)idx.insert(fp(1), 42);
  idx.erase(fp(1));
  const auto l = idx.lookup(fp(1));
  EXPECT_FALSE(l.found);
  // Bloom bits persist: the lookup still pays the (now futile) disk read.
  EXPECT_TRUE(l.needs_disk_read);
}

TEST(OnDiskIndex, PeekDoesNotCharge) {
  OnDiskIndex idx(small_cfg());
  (void)idx.insert(fp(1), 42);
  const Pba* p = idx.peek(fp(1));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 42u);
  EXPECT_EQ(idx.peek(fp(2)), nullptr);
  EXPECT_EQ(idx.disk_lookups(), 0u);
}

TEST(OnDiskIndex, UpdateOverwritesPba) {
  OnDiskIndex idx(small_cfg());
  (void)idx.insert(fp(1), 42);
  (void)idx.insert(fp(1), 43);
  EXPECT_EQ(*idx.peek(fp(1)), 43u);
  EXPECT_EQ(idx.entries(), 1u);
}

TEST(OnDiskIndex, BloomFalsePositiveRateBounded) {
  OnDiskIndex::Config cfg = small_cfg();
  cfg.bloom_bits = 1 << 20;  // ~10 bits per entry below
  OnDiskIndex idx(cfg);
  for (std::uint64_t i = 0; i < 100'000; ++i) (void)idx.insert(fp(i), i);
  std::uint64_t false_pos = 0;
  const std::uint64_t probes = 20'000;
  for (std::uint64_t i = 0; i < probes; ++i) {
    const auto l = idx.lookup(fp(1'000'000 + i));
    if (l.needs_disk_read) ++false_pos;
    EXPECT_FALSE(l.found);
  }
  EXPECT_LT(static_cast<double>(false_pos) / probes, 0.05);
}

TEST(OnDiskIndex, BloomBytesReported) {
  OnDiskIndex idx(small_cfg());
  EXPECT_EQ(idx.bloom_bytes(), (1u << 16) / 8);
}

}  // namespace
}  // namespace pod
