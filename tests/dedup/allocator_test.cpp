#include "dedup/allocator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pod {
namespace {

Fingerprint fp(std::uint64_t id) { return Fingerprint::of_content_id(id); }

BlockStore::Config small_cfg() {
  BlockStore::Config cfg;
  cfg.logical_blocks = 4096;
  cfg.pool_fraction = 0.5;
  return cfg;
}

TEST(PoolAllocator, BumpAllocatesSequential) {
  PoolAllocator a(1000, 100);
  EXPECT_EQ(a.allocate(), 1000u);
  EXPECT_EQ(a.allocate(), 1001u);
  EXPECT_EQ(a.allocate(), 1002u);
  EXPECT_EQ(a.allocated(), 3u);
}

TEST(PoolAllocator, HintHonoredAtBump) {
  PoolAllocator a(1000, 100);
  (void)a.allocate();
  EXPECT_EQ(a.allocate(1001), 1001u);
}

TEST(PoolAllocator, FreeAndRecycle) {
  PoolAllocator a(1000, 3);
  const Pba p0 = a.allocate();
  const Pba p1 = a.allocate();
  const Pba p2 = a.allocate();
  a.free_block(p1);
  // Pool exhausted; next allocation recycles the freed block.
  EXPECT_EQ(a.allocate(), p1);
  (void)p0;
  (void)p2;
}

TEST(PoolAllocator, HintReusesFreedBlock) {
  PoolAllocator a(1000, 10);
  const Pba p = a.allocate();
  a.free_block(p);
  EXPECT_EQ(a.allocate(p), p);
  // The stale free-list entry must not be handed out twice.
  const Pba q = a.allocate();
  EXPECT_NE(q, p);
}

TEST(PoolAllocator, InPool) {
  PoolAllocator a(1000, 10);
  EXPECT_TRUE(a.in_pool(1000));
  EXPECT_TRUE(a.in_pool(1009));
  EXPECT_FALSE(a.in_pool(999));
  EXPECT_FALSE(a.in_pool(1010));
}

TEST(PoolAllocatorDeathTest, ExhaustionAborts) {
  PoolAllocator a(0, 2);
  (void)a.allocate();
  (void)a.allocate();
  EXPECT_DEATH((void)a.allocate(), "pool exhausted");
}

TEST(BlockStore, FreshWriteGoesHome) {
  BlockStore s(small_cfg());
  const Pba p = s.place_write(42, fp(1));
  EXPECT_EQ(p, 42u);
  EXPECT_EQ(s.resolve(42), 42u);
  EXPECT_TRUE(s.is_live(42));
  EXPECT_FALSE(s.map_table().is_redirected(42));
  EXPECT_EQ(s.refcount(42), 1u);
  EXPECT_EQ(s.live_physical_blocks(), 1u);
}

TEST(BlockStore, UnwrittenIsNotLive) {
  BlockStore s(small_cfg());
  EXPECT_FALSE(s.is_live(7));
  EXPECT_EQ(s.resolve(7), kInvalidPba);
}

TEST(BlockStore, OverwriteInPlace) {
  BlockStore s(small_cfg());
  (void)s.place_write(42, fp(1));
  const Pba p = s.place_write(42, fp(2));
  EXPECT_EQ(p, 42u);
  EXPECT_EQ(*s.fingerprint_of(42), fp(2));
  EXPECT_EQ(s.live_physical_blocks(), 1u);
}

TEST(BlockStore, DedupSharesPhysicalBlock) {
  BlockStore s(small_cfg());
  (void)s.place_write(10, fp(1));
  s.dedup_to(20, 10);
  EXPECT_EQ(s.resolve(20), 10u);
  EXPECT_EQ(s.refcount(10), 2u);
  EXPECT_EQ(s.live_physical_blocks(), 1u);
  EXPECT_EQ(s.live_logical_blocks(), 2u);
  EXPECT_TRUE(s.map_table().is_redirected(20));
}

TEST(BlockStore, SharedHomeRedirectsOwnersWrite) {
  // LBA 10 holds content referenced by LBA 20; a new write to 10 must not
  // clobber the shared block (the paper's consistency rule).
  BlockStore s(small_cfg());
  (void)s.place_write(10, fp(1));
  s.dedup_to(20, 10);
  const Pba p = s.place_write(10, fp(2));
  EXPECT_NE(p, 10u);                       // redirected into the pool
  EXPECT_GE(p, small_cfg().logical_blocks);
  EXPECT_EQ(s.resolve(20), 10u);           // sharer unaffected
  EXPECT_EQ(*s.fingerprint_of(10), fp(1));
  EXPECT_EQ(*s.fingerprint_of(p), fp(2));
  EXPECT_EQ(s.refcount(10), 1u);
}

TEST(BlockStore, RefcountDropsAndFrees) {
  BlockStore s(small_cfg());
  (void)s.place_write(10, fp(1));
  s.dedup_to(20, 10);
  // Overwrite both referers; block 10 should be released.
  (void)s.place_write(20, fp(5));
  (void)s.place_write(10, fp(6));
  EXPECT_EQ(s.refcount(10), 1u);  // now holds fp(6), owned by lba 10
  EXPECT_EQ(*s.fingerprint_of(10), fp(6));
}

TEST(BlockStore, ContentGoneHookFires) {
  BlockStore s(small_cfg());
  std::vector<std::pair<Pba, Fingerprint>> gone;
  s.on_content_gone = [&](Pba p, const Fingerprint& f) { gone.emplace_back(p, f); };
  (void)s.place_write(10, fp(1));
  (void)s.place_write(10, fp(2));  // in-place overwrite releases fp(1)
  ASSERT_EQ(gone.size(), 1u);
  EXPECT_EQ(gone[0].first, 10u);
  EXPECT_EQ(gone[0].second, fp(1));
}

TEST(BlockStore, DedupToSamePbaIsNoop) {
  BlockStore s(small_cfg());
  (void)s.place_write(10, fp(1));
  s.dedup_to(20, 10);
  s.dedup_to(20, 10);  // same-content overwrite
  EXPECT_EQ(s.refcount(10), 2u);
  EXPECT_EQ(s.live_logical_blocks(), 2u);
}

TEST(BlockStore, ContiguousAllocationForRedirects) {
  BlockStore s(small_cfg());
  // Occupy homes 100..103 via a sharer so writes must redirect.
  (void)s.place_write(100, fp(1));
  (void)s.place_write(101, fp(2));
  (void)s.place_write(102, fp(3));
  s.dedup_to(200, 100);
  s.dedup_to(201, 101);
  s.dedup_to(202, 102);
  Pba prev = kInvalidPba;
  std::vector<Pba> placed;
  for (int i = 0; i < 3; ++i) {
    const Pba p = s.place_write(100 + i, fp(10 + i), prev);
    placed.push_back(p);
    prev = p;
  }
  EXPECT_EQ(placed[1], placed[0] + 1);
  EXPECT_EQ(placed[2], placed[1] + 1);
}

TEST(BlockStore, DiscardReleases) {
  BlockStore s(small_cfg());
  (void)s.place_write(10, fp(1));
  s.discard(10);
  EXPECT_FALSE(s.is_live(10));
  EXPECT_EQ(s.live_physical_blocks(), 0u);
  EXPECT_EQ(s.live_logical_blocks(), 0u);
  s.discard(10);  // idempotent
}

TEST(BlockStore, MapTableBytesGrowWithRedirects) {
  BlockStore s(small_cfg());
  (void)s.place_write(10, fp(1));
  s.dedup_to(20, 10);
  s.dedup_to(21, 10);
  EXPECT_EQ(s.map_table().bytes(), 2 * MapTable::kEntryBytes);
}

TEST(BlockStore, CapacitySavingsFromDedup) {
  BlockStore s(small_cfg());
  // 10 LBAs, all same content: 1 physical block.
  (void)s.place_write(0, fp(1));
  for (Lba l = 1; l < 10; ++l) s.dedup_to(l, 0);
  EXPECT_EQ(s.live_physical_blocks(), 1u);
  EXPECT_EQ(s.live_logical_blocks(), 10u);
}

TEST(BlockStoreDeathTest, PlaceWriteOutOfRangeAborts) {
  BlockStore s(small_cfg());
  EXPECT_DEATH((void)s.place_write(small_cfg().logical_blocks, fp(1)),
               "POD_CHECK");
}

TEST(BlockStoreDeathTest, DedupToDeadPbaAborts) {
  BlockStore s(small_cfg());
  EXPECT_DEATH(s.dedup_to(1, 999), "POD_CHECK");
}

}  // namespace
}  // namespace pod
