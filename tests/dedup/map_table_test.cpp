#include "dedup/map_table.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pod {
namespace {

TEST(MapTable, LookupMissingIsInvalid) {
  MapTable m;
  EXPECT_EQ(m.lookup(5), kInvalidPba);
  EXPECT_FALSE(m.is_redirected(5));
}

TEST(MapTable, SetAndLookup) {
  MapTable m;
  m.set(5, 100);
  EXPECT_EQ(m.lookup(5), 100u);
  EXPECT_TRUE(m.is_redirected(5));
}

TEST(MapTable, OverwriteRedirection) {
  MapTable m;
  m.set(5, 100);
  m.set(5, 200);
  EXPECT_EQ(m.lookup(5), 200u);
  EXPECT_EQ(m.entries(), 1u);
}

TEST(MapTable, ClearRestoresIdentity) {
  MapTable m;
  m.set(5, 100);
  m.clear(5);
  EXPECT_EQ(m.lookup(5), kInvalidPba);
  EXPECT_EQ(m.entries(), 0u);
}

TEST(MapTable, ManyToOneAllowed) {
  MapTable m;
  m.set(1, 100);
  m.set(2, 100);
  m.set(3, 100);
  EXPECT_EQ(m.entries(), 3u);
  EXPECT_EQ(m.lookup(2), 100u);
}

TEST(MapTable, BytesAccountingAtPaper20BytesPerEntry) {
  MapTable m;
  m.set(1, 10);
  m.set(2, 20);
  EXPECT_EQ(m.bytes(), 40u);
  EXPECT_EQ(MapTable::kEntryBytes, 20u);
}

TEST(MapTable, MaxBytesIsHighWatermark) {
  MapTable m;
  for (Lba l = 0; l < 100; ++l) m.set(l, l + 1000);
  for (Lba l = 0; l < 90; ++l) m.clear(l);
  EXPECT_EQ(m.bytes(), 10 * MapTable::kEntryBytes);
  EXPECT_EQ(m.max_bytes(), 100 * MapTable::kEntryBytes);
}

TEST(MapTable, ResolveRunMatchesScalarResolve) {
  // Mixed run: redirected, identity-mapped, dead, and past-end LBAs — the
  // run variant must agree with resolve() at every position, including the
  // out-of-table tail (kInvalidPba).
  MapTable m;
  m.set(2, 500);
  m.set_identity(3);
  m.set(5, 777);
  m.set_identity_run(7, 2);

  const Lba lba0 = 0;
  const std::size_t n = 12;  // extends past the table's high-water mark
  std::vector<Pba> run(n, 12345);
  m.resolve_run(lba0, n, run.data());
  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(run[i], m.resolve(lba0 + i));
  }
}

TEST(MapTable, ResolveRunEntirelyPastEnd) {
  MapTable m;
  m.set(0, 9);
  std::vector<Pba> run(4, 0);
  m.resolve_run(100, 4, run.data());
  for (const Pba p : run) EXPECT_EQ(p, kInvalidPba);
}

}  // namespace
}  // namespace pod
