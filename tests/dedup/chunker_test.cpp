#include "dedup/chunker.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pod {
namespace {

std::vector<std::uint8_t> make_data(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = static_cast<std::uint8_t>(seed + i * 31);
  return data;
}

TEST(FixedChunker, ExactMultiple) {
  HashEngine engine;
  FixedChunker c(kBlockSize);
  const auto data = make_data(3 * kBlockSize);
  const auto chunks = c.chunk(data, engine);
  ASSERT_EQ(chunks.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(chunks[i].offset, i * kBlockSize);
    EXPECT_EQ(chunks[i].size, kBlockSize);
  }
}

TEST(FixedChunker, TailChunkShort) {
  HashEngine engine;
  FixedChunker c(kBlockSize);
  const auto data = make_data(kBlockSize + 100);
  const auto chunks = c.chunk(data, engine);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[1].size, 100u);
}

TEST(FixedChunker, EmptyInput) {
  HashEngine engine;
  FixedChunker c;
  EXPECT_TRUE(c.chunk({}, engine).empty());
}

TEST(FixedChunker, FingerprintsMatchContent) {
  HashEngine engine;
  FixedChunker c(kBlockSize);
  auto data = make_data(2 * kBlockSize);
  // Make both chunks identical.
  std::copy(data.begin(), data.begin() + kBlockSize, data.begin() + kBlockSize);
  const auto chunks = c.chunk(data, engine);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].fp, chunks[1].fp);
}

TEST(FixedChunker, DistinctContentDistinctFingerprints) {
  HashEngine engine;
  FixedChunker c(kBlockSize);
  std::vector<std::uint8_t> data(2 * kBlockSize, 0x11);
  std::fill(data.begin() + kBlockSize, data.end(), 0x22);
  const auto chunks = c.chunk(data, engine);
  EXPECT_NE(chunks[0].fp, chunks[1].fp);
}

TEST(FixedChunker, CustomChunkSize) {
  HashEngine engine;
  FixedChunker c(512);
  const auto data = make_data(2048);
  EXPECT_EQ(c.chunk(data, engine).size(), 4u);
  EXPECT_EQ(c.chunk_size(), 512u);
}

TEST(FixedChunker, CountsHashedChunks) {
  HashEngine engine;
  FixedChunker c(kBlockSize);
  const auto data = make_data(4 * kBlockSize);
  (void)c.chunk(data, engine);
  EXPECT_EQ(engine.chunks_hashed(), 4u);
}

}  // namespace
}  // namespace pod
