// ChunkingConfig env parsing, the expected-chunk-size derivation, and the
// unified Chunker facade's dispatch.
#include "dedup/chunking.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hash/hash_engine.hpp"

namespace pod {
namespace {

/// Scoped env var: sets on construction, restores on destruction.
class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    if (value != nullptr)
      setenv(name, value, 1);
    else
      unsetenv(name);
  }
  ~EnvVar() {
    if (had_)
      setenv(name_, old_.c_str(), 1);
    else
      unsetenv(name_);
  }

 private:
  const char* name_;
  bool had_;
  std::string old_;
};

TEST(ChunkingConfig, DefaultsToFixed) {
  EnvVar mode("POD_CHUNKING", nullptr);
  const ChunkingConfig cfg = ChunkingConfig::from_env();
  EXPECT_EQ(cfg.mode, ChunkingMode::kFixed);
  EXPECT_EQ(cfg.fixed_size, kBlockSize);
}

TEST(ChunkingConfig, CdcFromEnv) {
  EnvVar mode("POD_CHUNKING", "cdc");
  const ChunkingConfig cfg = ChunkingConfig::from_env();
  EXPECT_EQ(cfg.mode, ChunkingMode::kCdc);
}

TEST(ChunkingConfig, UnknownModeFallsBackToFixed) {
  EnvVar mode("POD_CHUNKING", "banana");
  EXPECT_EQ(ChunkingConfig::from_env().mode, ChunkingMode::kFixed);
}

TEST(ChunkingConfig, CdcKnobsParsedAndValid) {
  EnvVar mode("POD_CHUNKING", "cdc");
  EnvVar min("POD_CDC_MIN", "4096");
  EnvVar avg("POD_CDC_AVG", "8192");
  EnvVar max("POD_CDC_MAX", "32768");
  const ChunkingConfig cfg = ChunkingConfig::from_env();
  EXPECT_EQ(cfg.rabin.min_chunk, 4096u);
  EXPECT_EQ(cfg.rabin.max_chunk, 32768u);
  // avg - min = 4096 = 2^12.
  EXPECT_EQ(cfg.rabin.mask_bits, 12u);
  // Must construct without tripping RabinChunker's invariants.
  RabinChunker chunker(cfg.rabin);
  EXPECT_EQ(cfg.expected_chunk_bytes(), 4096u + 4096u);
}

TEST(ChunkingConfig, MalformedAndInconsistentKnobsClampNotCrash) {
  EnvVar mode("POD_CHUNKING", "cdc");
  EnvVar min("POD_CDC_MIN", "potato");   // malformed → default
  EnvVar avg("POD_CDC_AVG", "1");        // below min → clamped up
  EnvVar max("POD_CDC_MAX", "2");        // below avg → clamped up
  const ChunkingConfig cfg = ChunkingConfig::from_env();
  EXPECT_GE(cfg.rabin.min_chunk, cfg.rabin.window);
  EXPECT_GT(cfg.rabin.max_chunk, cfg.rabin.min_chunk);
  RabinChunker chunker(cfg.rabin);  // invariants hold
}

TEST(ChunkingConfig, RabinForExpectedSatisfiesInvariants) {
  for (const std::size_t expected :
       {128uz, 2048uz, 4096uz, 8192uz, 16384uz, 65536uz}) {
    SCOPED_TRACE(expected);
    const RabinConfig rc = ChunkingConfig::rabin_for_expected(expected);
    EXPECT_GE(rc.min_chunk, rc.window);
    EXPECT_GT(rc.max_chunk, rc.min_chunk);
    EXPECT_GE(rc.mask_bits, 4u);
    EXPECT_LE(rc.mask_bits, 30u);
    RabinChunker chunker(rc);
    if (expected >= 2048) {
      // Estimate lands near the target for non-degenerate sizes.
      const std::size_t est = rc.min_chunk + (std::size_t{1} << rc.mask_bits);
      EXPECT_GE(est, expected / 2);
      EXPECT_LE(est, expected * 2);
    }
  }
}

TEST(Chunking, FacadeDispatchMatchesUnderlyingChunkers) {
  Rng rng(5);
  std::vector<std::uint8_t> data(96 * 1024);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  HashEngine engine;

  ChunkingConfig fixed_cfg;
  Chunker fixed_facade(fixed_cfg);
  std::vector<DataChunk> got;
  fixed_facade.chunk_into({data.data(), data.size()}, engine, got);
  const std::vector<DataChunk> want_fixed =
      FixedChunker(fixed_cfg.fixed_size).chunk({data.data(), data.size()},
                                               engine);
  ASSERT_EQ(got.size(), want_fixed.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].offset, want_fixed[i].offset);
    EXPECT_EQ(got[i].size, want_fixed[i].size);
    EXPECT_EQ(got[i].fp, want_fixed[i].fp);
  }

  ChunkingConfig cdc_cfg;
  cdc_cfg.mode = ChunkingMode::kCdc;
  Chunker cdc_facade(cdc_cfg);
  cdc_facade.chunk_into({data.data(), data.size()}, engine, got);
  const std::vector<DataChunk> want_cdc =
      RabinChunker(cdc_cfg.rabin).chunk({data.data(), data.size()}, engine);
  ASSERT_EQ(got.size(), want_cdc.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].offset, want_cdc[i].offset);
    EXPECT_EQ(got[i].size, want_cdc[i].size);
    EXPECT_EQ(got[i].fp, want_cdc[i].fp);
  }
}

}  // namespace
}  // namespace pod
