#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace pod {
namespace {

TEST(ThreadPool, InlineModeRunsOnSubmit) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<int> order;
  pool.submit([&] { order.push_back(1); });
  // Inline mode executes before submit returns; nothing is pending.
  EXPECT_EQ(order, (std::vector<int>{1}));
  pool.wait_idle();
}

TEST(ThreadPool, SingleJobAlsoInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++done;
    });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, ReusableAfterWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait_idle();
  pool.submit([&] { ++count; });
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++count; });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, JobsFromEnvParsesPositive) {
  setenv("POD_JOBS", "3", 1);
  EXPECT_EQ(ThreadPool::jobs_from_env(8), 3u);
  unsetenv("POD_JOBS");
}

TEST(ThreadPool, JobsFromEnvFallsBack) {
  unsetenv("POD_JOBS");
  EXPECT_EQ(ThreadPool::jobs_from_env(8), 8u);
  setenv("POD_JOBS", "0", 1);
  EXPECT_EQ(ThreadPool::jobs_from_env(8), 8u);
  setenv("POD_JOBS", "junk", 1);
  EXPECT_EQ(ThreadPool::jobs_from_env(8), 8u);
  unsetenv("POD_JOBS");
  // Default fallback is the hardware concurrency, at least 1.
  EXPECT_GE(ThreadPool::jobs_from_env(), 1u);
}

}  // namespace
}  // namespace pod
