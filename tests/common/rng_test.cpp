#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pod {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingleValue) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(42, 42), 42u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformApproximatelyUnbiased) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform(0, 9)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialAlwaysPositive) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, JumpProducesIndependentStream) {
  Rng a(99);
  Rng b(99);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace pod
