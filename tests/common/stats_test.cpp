#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

namespace pod {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsCombined) {
  OnlineStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37;
    if (i % 2 == 0) a.add(x);
    else b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(OnlineStats, ResetClears) {
  OnlineStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(LatencyRecorder, MeanAndCount) {
  LatencyRecorder r;
  r.add(ms(1));
  r.add(ms(2));
  r.add(ms(3));
  EXPECT_EQ(r.count(), 3u);
  EXPECT_DOUBLE_EQ(r.mean_ms(), 2.0);
  EXPECT_DOUBLE_EQ(r.max_ms(), 3.0);
}

TEST(LatencyRecorder, PercentilesExact) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) r.add(ms(i));
  EXPECT_NEAR(r.percentile_ms(0.0), 1.0, 1e-9);
  EXPECT_NEAR(r.percentile_ms(1.0), 100.0, 1e-9);
  EXPECT_NEAR(r.percentile_ms(0.5), 50.5, 1e-9);
  EXPECT_NEAR(r.percentile_ms(0.99), 99.01, 0.1);
}

TEST(LatencyRecorder, PercentileOfEmptyIsZero) {
  LatencyRecorder r;
  EXPECT_DOUBLE_EQ(r.percentile_ns(0.5), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_ns(), 0.0);
}

TEST(LatencyRecorder, PercentileAfterMoreAdds) {
  LatencyRecorder r;
  r.add(ms(10));
  EXPECT_DOUBLE_EQ(r.percentile_ms(0.5), 10.0);
  r.add(ms(20));  // re-sorting must happen after the new sample
  EXPECT_DOUBLE_EQ(r.percentile_ms(1.0), 20.0);
}

TEST(LatencyRecorder, ConcurrentPercentileReadsAreSafe) {
  // percentile_ns() works on a per-call copy, so concurrent readers of one
  // shared recorder (ParallelRunner aggregation) must race neither with
  // each other nor corrupt the sample order. Run under TSan for teeth.
  LatencyRecorder r;
  for (int i = 1; i <= 10'000; ++i) r.add(ms(i % 250 + 1));
  std::vector<std::thread> readers;
  std::atomic<int> mismatches{0};
  const double expected_p50 = r.percentile_ms(0.5);
  const double expected_p99 = r.percentile_ms(0.99);
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&] {
      for (int iter = 0; iter < 50; ++iter) {
        if (r.percentile_ms(0.5) != expected_p50 ||
            r.percentile_ms(0.99) != expected_p99)
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(LatencyRecorder, MergeCombinesSamples) {
  LatencyRecorder a, b;
  a.add(ms(1));
  b.add(ms(3));
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean_ms(), 2.0);
}

TEST(LatencyRecorder, ResetClears) {
  LatencyRecorder r;
  r.add(ms(1));
  r.reset();
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.percentile_ms(0.5), 0.0);
}

TEST(LatencyRecorder, BucketedKeepsExactMoments) {
  LatencyRecorder exact, bucketed;
  bucketed.set_bucketed();
  std::uint64_t seed = 12345;
  for (int i = 0; i < 5000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const Duration d = static_cast<Duration>((seed >> 16) % ms(50)) + 1;
    exact.add(d);
    bucketed.add(d);
  }
  EXPECT_TRUE(bucketed.bucketed());
  EXPECT_EQ(bucketed.count(), exact.count());
  // Moments run through OnlineStats in both modes — exactly equal.
  EXPECT_DOUBLE_EQ(bucketed.mean_ns(), exact.mean_ns());
  EXPECT_DOUBLE_EQ(bucketed.stats().min(), exact.stats().min());
  EXPECT_DOUBLE_EQ(bucketed.stats().max(), exact.stats().max());
}

TEST(LatencyRecorder, BucketedPercentilesWithinBucketResolution) {
  LatencyRecorder exact, bucketed;
  bucketed.set_bucketed();
  std::uint64_t seed = 99;
  for (int i = 0; i < 20000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const Duration d = static_cast<Duration>((seed >> 16) % ms(200)) + 1;
    exact.add(d);
    bucketed.add(d);
  }
  // Quarter-octave buckets: <= 25% relative width above 4 ns.
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double pe = exact.percentile_ns(q);
    const double pb = bucketed.percentile_ns(q);
    EXPECT_NEAR(pb, pe, pe * 0.25 + 4.0) << "q=" << q;
  }
  // Interpolated values stay inside the observed range.
  EXPECT_GE(bucketed.percentile_ns(0.0), bucketed.stats().min());
  EXPECT_LE(bucketed.percentile_ns(1.0), bucketed.stats().max());
}

TEST(LatencyRecorder, SetBucketedFoldsExistingSamples) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) r.add(us(i));
  const double before = r.percentile_ns(0.5);
  r.set_bucketed();
  EXPECT_TRUE(r.bucketed());
  EXPECT_EQ(r.count(), 100u);
  EXPECT_NEAR(r.percentile_ns(0.5), before, before * 0.25 + 4.0);
}

TEST(LatencyRecorder, BucketedMemoryStaysBounded) {
  LatencyRecorder r;
  r.set_bucketed();
  for (int i = 0; i < 100000; ++i) r.add(us(i + 1));
  // ~2 KB of bucket counts, no per-sample storage.
  EXPECT_LE(r.memory_bytes(), 4096u);
}

TEST(LatencyRecorder, MergePromotesToBucketed) {
  LatencyRecorder exact, bucketed;
  exact.add(ms(1));
  exact.add(ms(2));
  bucketed.set_bucketed();
  bucketed.add(ms(3));
  exact.merge(bucketed);
  EXPECT_TRUE(exact.bucketed());
  EXPECT_EQ(exact.count(), 3u);
  EXPECT_DOUBLE_EQ(exact.mean_ms(), 2.0);

  // And the reverse direction: bucketed absorbs an exact recorder.
  LatencyRecorder b2, e2;
  b2.set_bucketed();
  b2.add(ms(1));
  e2.add(ms(3));
  b2.merge(e2);
  EXPECT_EQ(b2.count(), 2u);
  EXPECT_DOUBLE_EQ(b2.mean_ms(), 2.0);
}

TEST(Ewma, FirstSampleSeeds) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.add(10.0);
  EXPECT_FALSE(e.empty());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, SmoothsTowardNewValues) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, ResetEmpties) {
  Ewma e(0.3);
  e.add(1.0);
  e.reset();
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(us(1.0), 1000);
  EXPECT_EQ(ms(1.0), 1'000'000);
  EXPECT_EQ(sec(1.0), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_ms(ms(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_us(us(32)), 32.0);
  EXPECT_DOUBLE_EQ(to_sec(sec(3)), 3.0);
}

TEST(TimeHelpers, BytesBlocksRoundTrip) {
  EXPECT_EQ(bytes_to_blocks(0), 0u);
  EXPECT_EQ(bytes_to_blocks(1), 1u);
  EXPECT_EQ(bytes_to_blocks(kBlockSize), 1u);
  EXPECT_EQ(bytes_to_blocks(kBlockSize + 1), 2u);
  EXPECT_EQ(blocks_to_bytes(3), 3 * kBlockSize);
}

}  // namespace
}  // namespace pod
