#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pod {
namespace {

TEST(Zipf, SamplesWithinRange) {
  Rng rng(1);
  ZipfSampler z(100, 0.9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 100u);
}

TEST(Zipf, SingleItemAlwaysZero) {
  Rng rng(2);
  ZipfSampler z(1, 1.2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Zipf, ThetaZeroIsUniform) {
  Rng rng(3);
  ZipfSampler z(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Zipf, SkewFavorsLowRanks) {
  Rng rng(4);
  ZipfSampler z(1000, 0.99);
  int low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (z.sample(rng) < 10) ++low;
  // With theta ~1, the top 10 of 1000 items draw a large share.
  EXPECT_GT(low, n / 4);
}

TEST(Zipf, HigherThetaMoreSkew) {
  Rng rng_a(5), rng_b(5);
  ZipfSampler mild(1000, 0.4), strong(1000, 1.2);
  int mild_top = 0, strong_top = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (mild.sample(rng_a) == 0) ++mild_top;
    if (strong.sample(rng_b) == 0) ++strong_top;
  }
  EXPECT_GT(strong_top, mild_top);
}

TEST(Zipf, ExactFrequencyMatchesPmf) {
  Rng rng(6);
  const std::uint64_t n_items = 50;
  const double theta = 0.8;
  ZipfSampler z(n_items, theta);
  std::vector<int> counts(n_items, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];

  double zeta = 0.0;
  for (std::uint64_t i = 1; i <= n_items; ++i) zeta += 1.0 / std::pow(i, theta);
  for (std::uint64_t r = 0; r < 5; ++r) {
    const double expected = n / std::pow(static_cast<double>(r + 1), theta) / zeta;
    EXPECT_NEAR(counts[r], expected, expected * 0.1 + 50);
  }
}

TEST(Zipf, LargeNApproximationInRange) {
  Rng rng(7);
  ZipfSampler z(10'000'000, 0.9);  // triggers the approximate path
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 10'000'000u);
}

TEST(Zipf, LargeNApproximationSkewed) {
  Rng rng(8);
  ZipfSampler z(1'000'000, 0.99);
  std::uint64_t low = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (z.sample(rng) < 100) ++low;
  EXPECT_GT(low, static_cast<std::uint64_t>(n) / 5);
}

TEST(Zipf, ThetaOneLargeNHandled) {
  Rng rng(9);
  ZipfSampler z(1'000'000, 1.0);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 1'000'000u);
}

TEST(Zipf, AccessorsReflectConstruction) {
  ZipfSampler z(42, 0.5);
  EXPECT_EQ(z.n(), 42u);
  EXPECT_DOUBLE_EQ(z.theta(), 0.5);
}

}  // namespace
}  // namespace pod
