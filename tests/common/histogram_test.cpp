#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace pod {
namespace {

TEST(Pow2Histogram, BucketsByBitWidth) {
  Pow2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);  // value 0
  EXPECT_EQ(h.bucket(1), 1u);  // value 1
  EXPECT_EQ(h.bucket(2), 2u);  // values 2,3
  EXPECT_EQ(h.bucket(3), 1u);  // value 4
}

TEST(Pow2Histogram, WeightsAccumulate) {
  Pow2Histogram h;
  h.add(8, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.bucket(4), 10u);
}

TEST(Pow2Histogram, OutOfRangeBucketIsZero) {
  Pow2Histogram h;
  h.add(1);
  EXPECT_EQ(h.bucket(50), 0u);
}

TEST(SizeHistogram, DefaultPaperBuckets) {
  SizeHistogram h;
  EXPECT_EQ(h.num_buckets(), 6u);
  EXPECT_EQ(h.label(0), "4KB");
  EXPECT_EQ(h.label(4), "64KB");
  EXPECT_EQ(h.label(5), ">=128KB");
}

TEST(SizeHistogram, BucketAssignment) {
  SizeHistogram h;
  EXPECT_EQ(h.bucket_for(1), 0u);            // sub-4KB folds into first
  EXPECT_EQ(h.bucket_for(4 * kKiB), 0u);     // inclusive upper edge
  EXPECT_EQ(h.bucket_for(5 * kKiB), 1u);
  EXPECT_EQ(h.bucket_for(8 * kKiB), 1u);
  EXPECT_EQ(h.bucket_for(64 * kKiB), 4u);
  EXPECT_EQ(h.bucket_for(128 * kKiB), 5u);
  EXPECT_EQ(h.bucket_for(1 * kMiB), 5u);     // overflow folds into last
}

TEST(SizeHistogram, AddCounts) {
  SizeHistogram h;
  h.add(4 * kKiB);
  h.add(4 * kKiB);
  h.add(16 * kKiB, 3);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 3u);
  EXPECT_EQ(h.count(1), 0u);
}

TEST(SizeHistogram, CustomEdges) {
  SizeHistogram h({8 * kKiB, 32 * kKiB});
  EXPECT_EQ(h.num_buckets(), 2u);
  EXPECT_EQ(h.bucket_for(8 * kKiB), 0u);
  EXPECT_EQ(h.bucket_for(9 * kKiB), 1u);
  EXPECT_EQ(h.label(0), "8KB");
  EXPECT_EQ(h.label(1), ">=32KB");
}

}  // namespace
}  // namespace pod
