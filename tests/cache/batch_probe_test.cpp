// The batched two-phase probe paths must be observationally identical to
// their scalar equivalents: lookup_batch ≡ find-per-key, get_batch ≡
// get-per-key (including LRU promotion order), and
// IndexCache::lookup_batch ≡ lookup-then-ghost_probe per chunk. The batch
// forms may only differ in memory-latency behaviour (prefetching), never
// in results or cache state.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/flat_lru_map.hpp"
#include "cache/index_cache.hpp"
#include "common/flat_hash_map.hpp"
#include "common/rng.hpp"
#include "hash/fingerprint.hpp"

namespace pod {
namespace {

Fingerprint fp(std::uint64_t id) { return Fingerprint::of_content_id(id); }

TEST(FlatHashMapBatch, MatchesScalarFindOverMixedHitsAndMisses) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 0; k < 1000; k += 2) m.insert_or_assign(k, k * 10);

  // Well past one kBatchWindow, interleaving present and absent keys.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 200; ++k) keys.push_back(k * 7 % 1100);

  std::vector<const std::uint64_t*> batch(keys.size());
  m.lookup_batch(keys.data(), keys.size(), batch.data());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCOPED_TRACE(keys[i]);
    EXPECT_EQ(batch[i], m.find(keys[i]));
    if (batch[i] != nullptr) {
      EXPECT_EQ(*batch[i], keys[i] * 10);
    }
  }
}

TEST(FlatHashMapBatch, EmptyMapYieldsAllNull) {
  FlatHashMap<std::uint64_t, int> m;
  std::vector<std::uint64_t> keys = {1, 2, 3};
  std::vector<const int*> out(keys.size(), reinterpret_cast<const int*>(1));
  m.lookup_batch(keys.data(), keys.size(), out.data());
  for (const int* p : out) EXPECT_EQ(p, nullptr);
}

TEST(FlatHashMapBatch, DuplicateKeysInOneBatchResolveIdentically) {
  FlatHashMap<std::uint64_t, int> m;
  m.insert_or_assign(5, 50);
  std::vector<std::uint64_t> keys = {5, 9, 5, 5, 9};
  std::vector<const int*> out(keys.size());
  m.lookup_batch(keys.data(), keys.size(), out.data());
  EXPECT_EQ(out[0], m.find(5));
  EXPECT_EQ(out[2], out[0]);
  EXPECT_EQ(out[3], out[0]);
  EXPECT_EQ(out[1], nullptr);
  EXPECT_EQ(out[4], nullptr);
}

TEST(FlatHashMapBatch, MatchesScalarAfterEraseChurn) {
  // Backward-shift deletion moves entries between slots; batch probing must
  // still find every survivor.
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  Rng rng(7);
  for (std::uint64_t k = 0; k < 4096; ++k) m.insert_or_assign(k, k);
  for (int i = 0; i < 2000; ++i) m.erase(rng.next() % 4096);

  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 4096; k += 3) keys.push_back(k);
  std::vector<const std::uint64_t*> out(keys.size());
  m.lookup_batch(keys.data(), keys.size(), out.data());
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(out[i], m.find(keys[i])) << keys[i];
}

// Runs the same probe sequence through a batched map and a scalar twin and
// asserts the final LRU states are indistinguishable by draining both with
// identical inserts and comparing the eviction sequences.
TEST(FlatLruMapBatch, MatchesScalarGetIncludingPromotionOrder) {
  constexpr std::size_t kCap = 64;
  FlatLruMap<std::uint64_t, std::uint64_t> batched(kCap);
  FlatLruMap<std::uint64_t, std::uint64_t> scalar(kCap);
  for (std::uint64_t k = 0; k < kCap; ++k) {
    batched.put(k, k + 100);
    scalar.put(k, k + 100);
  }

  // Mixed hits/misses/duplicates, longer than one batch window.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 3 * kCap; ++i) keys.push_back(i * 5 % 90);

  std::vector<std::uint64_t*> out(keys.size());
  batched.get_batch(keys.data(), keys.size(), out.data());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::uint64_t* s = scalar.get(keys[i]);
    ASSERT_EQ(out[i] == nullptr, s == nullptr) << keys[i];
    if (s != nullptr) {
      EXPECT_EQ(*out[i], *s);
    }
  }

  // Same recency order ⇒ same eviction order under identical pressure.
  std::vector<std::uint64_t> evicted_b, evicted_s;
  for (std::uint64_t k = 1000; k < 1000 + kCap; ++k) {
    batched.put(k, k, [&](const std::uint64_t& key, std::uint64_t&&) {
      evicted_b.push_back(key);
    });
    scalar.put(k, k, [&](const std::uint64_t& key, std::uint64_t&&) {
      evicted_s.push_back(key);
    });
  }
  EXPECT_EQ(evicted_b, evicted_s);
}

// Scalar reference for IndexCache::lookup_batch: the per-chunk engine probe
// loop it replaces (lookup each chunk in order, then ghost-probe each miss
// in order).
void scalar_probe(IndexCache& c, const std::vector<Fingerprint>& fps,
                  std::vector<const IndexEntry*>& out) {
  out.assign(fps.size(), nullptr);
  std::vector<const Fingerprint*> missed;
  for (std::size_t i = 0; i < fps.size(); ++i) {
    out[i] = c.lookup(fps[i]);
    if (out[i] == nullptr) missed.push_back(&fps[i]);
  }
  for (const Fingerprint* m : missed) (void)c.ghost_probe(*m);
}

void expect_same_state(IndexCache& a, IndexCache& b,
                       std::uint64_t key_range) {
  EXPECT_EQ(a.hits(), b.hits());
  EXPECT_EQ(a.misses(), b.misses());
  EXPECT_EQ(a.ghost_hits(), b.ghost_hits());
  EXPECT_EQ(a.size_entries(), b.size_entries());
  for (std::uint64_t k = 0; k < key_range; ++k) {
    const IndexEntry* ea = a.peek(fp(k));
    const IndexEntry* eb = b.peek(fp(k));
    ASSERT_EQ(ea == nullptr, eb == nullptr) << k;
    if (ea != nullptr) {
      EXPECT_EQ(ea->pba, eb->pba);
      EXPECT_EQ(ea->count, eb->count);
    }
  }
}

TEST(IndexCacheBatch, MatchesScalarWithEvictedKeysInGhost) {
  constexpr std::uint64_t kEntries = 8;
  IndexCache batched(kEntries * IndexCache::kEntryBytes,
                     kEntries * IndexCache::kEntryBytes);
  IndexCache scalar(kEntries * IndexCache::kEntryBytes,
                    kEntries * IndexCache::kEntryBytes);
  // Insert past capacity so fp(0..7) fall out into the ghost list while
  // fp(8..15) stay resident — the batch then mixes resident hits, ghost
  // hits, and cold misses in one request.
  for (std::uint64_t k = 0; k < 16; ++k) {
    batched.insert(fp(k), 100 + k);
    scalar.insert(fp(k), 100 + k);
  }

  std::vector<Fingerprint> request;
  for (std::uint64_t k = 0; k < 24; ++k) request.push_back(fp(k));

  std::vector<const IndexEntry*> out_b(request.size());
  batched.lookup_batch(request, out_b.data());
  std::vector<const IndexEntry*> out_s;
  scalar_probe(scalar, request, out_s);

  for (std::size_t i = 0; i < request.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(out_b[i] == nullptr, out_s[i] == nullptr);
    if (out_b[i] != nullptr) {
      EXPECT_EQ(out_b[i]->pba, out_s[i]->pba);
      EXPECT_EQ(out_b[i]->count, out_s[i]->count);
    }
  }
  expect_same_state(batched, scalar, 24);
  EXPECT_EQ(batched.batch_probes(), request.size());
  EXPECT_EQ(scalar.batch_probes(), 0u);
}

TEST(IndexCacheBatch, DuplicateFingerprintsInOneRequest) {
  // A request writing the same content twice probes the same fingerprint
  // twice: both probes must hit (or both miss + the ghost entry be consumed
  // exactly once), exactly as in the scalar loop.
  IndexCache batched(8 * IndexCache::kEntryBytes, 8 * IndexCache::kEntryBytes);
  IndexCache scalar(8 * IndexCache::kEntryBytes, 8 * IndexCache::kEntryBytes);
  for (IndexCache* c : {&batched, &scalar}) {
    // fp(2) goes in first so capacity pressure evicts exactly it (9 inserts
    // into 8 slots drop the single LRU entry) while fp(1) stays resident.
    c->insert(fp(2), 22);
    c->insert(fp(1), 11);
    for (std::uint64_t k = 10; k < 17; ++k) c->insert(fp(k), k);
  }
  ASSERT_EQ(batched.peek(fp(2)), nullptr);
  ASSERT_NE(batched.peek(fp(1)), nullptr);

  const std::vector<Fingerprint> request = {fp(1), fp(2), fp(1), fp(2), fp(3)};
  std::vector<const IndexEntry*> out_b(request.size());
  batched.lookup_batch(request, out_b.data());
  std::vector<const IndexEntry*> out_s;
  scalar_probe(scalar, request, out_s);

  for (std::size_t i = 0; i < request.size(); ++i)
    ASSERT_EQ(out_b[i] == nullptr, out_s[i] == nullptr) << i;
  expect_same_state(batched, scalar, 20);
  // fp(1) hit twice: its Count advanced by 2, like two scalar lookups.
  EXPECT_EQ(batched.peek(fp(1))->count, 2u);
  // The ghost entry for fp(2) was consumed by the first miss only.
  EXPECT_EQ(batched.ghost_hits(), scalar.ghost_hits());
}

TEST(IndexCacheBatch, LongRandomSequenceMatchesScalar) {
  constexpr std::uint64_t kEntries = 32;
  IndexCache batched(kEntries * IndexCache::kEntryBytes,
                     kEntries * IndexCache::kEntryBytes);
  IndexCache scalar(kEntries * IndexCache::kEntryBytes,
                    kEntries * IndexCache::kEntryBytes);
  Rng rng(42);
  // Interleave inserts (eviction churn) with batched probes of random
  // request shapes, mirroring every operation into the scalar twin.
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t k = rng.next() % 128;
    batched.insert(fp(k), k);
    scalar.insert(fp(k), k);

    std::vector<Fingerprint> request;
    const std::size_t len = 1 + rng.next() % 40;  // spans batch windows
    for (std::size_t i = 0; i < len; ++i) request.push_back(fp(rng.next() % 128));

    std::vector<const IndexEntry*> out_b(request.size());
    batched.lookup_batch(request, out_b.data());
    std::vector<const IndexEntry*> out_s;
    scalar_probe(scalar, request, out_s);
    for (std::size_t i = 0; i < request.size(); ++i)
      ASSERT_EQ(out_b[i] == nullptr, out_s[i] == nullptr);
  }
  expect_same_state(batched, scalar, 128);
}

}  // namespace
}  // namespace pod
