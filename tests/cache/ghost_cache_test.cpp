#include "cache/ghost_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pod {
namespace {

TEST(GhostCache, RemembersEvictions) {
  GhostCache<int> g(4);
  g.remember(1);
  EXPECT_TRUE(g.contains(1));
  EXPECT_EQ(g.size(), 1u);
}

TEST(GhostCache, ProbeConsumesAndCounts) {
  GhostCache<int> g(4);
  g.remember(1);
  EXPECT_TRUE(g.probe_and_consume(1));
  EXPECT_EQ(g.hits(), 1u);
  EXPECT_FALSE(g.contains(1));
  EXPECT_FALSE(g.probe_and_consume(1));
  EXPECT_EQ(g.hits(), 1u);
}

TEST(GhostCache, BoundedByCapacity) {
  GhostCache<int> g(2);
  g.remember(1);
  g.remember(2);
  g.remember(3);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_FALSE(g.contains(1));
  EXPECT_TRUE(g.contains(3));
}

TEST(GhostCache, EpochHitsTrackWindow) {
  GhostCache<int> g(8);
  g.remember(1);
  g.remember(2);
  (void)g.probe_and_consume(1);
  EXPECT_EQ(g.epoch_hits(), 1u);
  g.begin_epoch();
  EXPECT_EQ(g.epoch_hits(), 0u);
  (void)g.probe_and_consume(2);
  EXPECT_EQ(g.epoch_hits(), 1u);
  EXPECT_EQ(g.hits(), 2u);
}

TEST(GhostCache, ForEachMruFirst) {
  GhostCache<int> g(4);
  g.remember(1);
  g.remember(2);
  g.remember(3);
  std::vector<int> order;
  g.for_each([&](const int& k) { order.push_back(k); });
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(GhostCache, ForgetDropsWithoutHit) {
  GhostCache<int> g(4);
  g.remember(1);
  g.forget(1);
  EXPECT_FALSE(g.contains(1));
  EXPECT_EQ(g.hits(), 0u);
}

TEST(GhostCache, RememberSameKeyTwiceKeepsOne) {
  GhostCache<int> g(4);
  g.remember(1);
  g.remember(1);
  EXPECT_EQ(g.size(), 1u);
}

TEST(GhostCache, SetCapacityShrinks) {
  GhostCache<int> g(4);
  for (int i = 0; i < 4; ++i) g.remember(i);
  g.set_capacity(2);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.contains(3));
  EXPECT_FALSE(g.contains(0));
}

TEST(GhostCache, ClearEmpties) {
  GhostCache<int> g(4);
  g.remember(1);
  g.clear();
  EXPECT_EQ(g.size(), 0u);
}

}  // namespace
}  // namespace pod
