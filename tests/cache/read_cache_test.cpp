#include "cache/read_cache.hpp"

#include <gtest/gtest.h>

namespace pod {
namespace {

TEST(ReadCache, MissThenHit) {
  ReadCache c(16 * kBlockSize, 16 * kBlockSize);
  EXPECT_FALSE(c.lookup(100));
  c.insert(100);
  EXPECT_TRUE(c.lookup(100));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
}

TEST(ReadCache, CapacityInBlocks) {
  ReadCache c(4 * kBlockSize, 4 * kBlockSize);
  for (Pba p = 0; p < 8; ++p) c.insert(p);
  EXPECT_EQ(c.size_blocks(), 4u);
  EXPECT_EQ(c.capacity_bytes(), 4 * kBlockSize);
}

TEST(ReadCache, EvictionsEnterGhost) {
  ReadCache c(2 * kBlockSize, 8 * kBlockSize);
  c.insert(1);
  c.insert(2);
  c.insert(3);  // evicts 1
  EXPECT_FALSE(c.lookup(1));
  EXPECT_TRUE(c.ghost_probe(1));
  EXPECT_EQ(c.ghost_hits(), 1u);
}

TEST(ReadCache, InvalidateRemoves) {
  ReadCache c(4 * kBlockSize, 4 * kBlockSize);
  c.insert(5);
  c.invalidate(5);
  EXPECT_FALSE(c.lookup(5));
}

TEST(ReadCache, ResizeShrinkSpillsToGhost) {
  ReadCache c(4 * kBlockSize, 16 * kBlockSize);
  for (Pba p = 0; p < 4; ++p) c.insert(p);
  c.resize(1 * kBlockSize);
  EXPECT_EQ(c.size_blocks(), 1u);
  EXPECT_TRUE(c.ghost_probe(0));
  EXPECT_TRUE(c.ghost_probe(1));
  EXPECT_TRUE(c.ghost_probe(2));
  EXPECT_FALSE(c.ghost_probe(3));  // block 3 (MRU) survived in the cache
  EXPECT_TRUE(c.lookup(3));
}

TEST(ReadCache, ResizeGrowAllowsMore) {
  ReadCache c(1 * kBlockSize, 4 * kBlockSize);
  c.insert(1);
  c.resize(4 * kBlockSize);
  c.insert(2);
  c.insert(3);
  EXPECT_TRUE(c.lookup(1));
  EXPECT_TRUE(c.lookup(2));
  EXPECT_TRUE(c.lookup(3));
}

TEST(ReadCache, ZeroCapacityNeverHits) {
  ReadCache c(0, 4 * kBlockSize);
  c.insert(1);
  EXPECT_FALSE(c.lookup(1));
  // But the eviction-on-insert lands in the ghost list.
  EXPECT_TRUE(c.ghost_probe(1));
}

TEST(ReadCache, LookupPromotes) {
  ReadCache c(2 * kBlockSize, 4 * kBlockSize);
  c.insert(1);
  c.insert(2);
  EXPECT_TRUE(c.lookup(1));  // 1 -> MRU
  c.insert(3);               // evicts 2
  EXPECT_TRUE(c.lookup(1));
  EXPECT_FALSE(c.lookup(2));
}

TEST(ReadCache, HitRateZeroWhenUntouched) {
  ReadCache c(kBlockSize, kBlockSize);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.0);
}

}  // namespace
}  // namespace pod
