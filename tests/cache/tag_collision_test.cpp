// Adversarial tag-collision storms for the group-probing tables.
//
// The Swiss-table ctrl arrays compare 7-bit tags 16/32 lanes at a time; a
// probe only touches a slot when its tag matches. These tests construct key
// sets that all share the SAME tag AND the SAME home bucket, so every probe
// walks a maximal candidate chain: multiple full groups of false-positive
// lanes (exercising the wide AVX2 continuation when active), wraparound on
// the ring, and backward-shift deletes that slide colliding entries across
// group boundaries. Everything is cross-checked against ground truth (a
// mirror of expected contents) and, for the fused path, a scalar twin.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/flat_lru_map.hpp"
#include "cache/index_cache.hpp"
#include "common/flat_hash_map.hpp"
#include "common/rng.hpp"
#include "hash/fingerprint.hpp"

namespace pod {
namespace {

// Brute-forces `n` uint64 keys whose scrambled tags agree in the ctrl byte
// (tag >> 25) and the low `home_bits` bits — i.e. identical 7-bit group
// tag and identical home bucket for any table of <= 2^home_bits buckets.
// Uses the map's own public hash_tag so the test tracks the real tag
// derivation. FlatHashMap shares the same scramble (its state byte is the
// same bits), so one key set storms both containers.
std::vector<std::uint64_t> colliding_keys(std::size_t n, int home_bits) {
  const FlatLruMap<std::uint64_t, int> probe(1);
  const std::uint32_t want = probe.hash_tag(0x1234567);
  const std::uint32_t home_mask = (1u << home_bits) - 1;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 1; keys.size() < n; ++k) {
    const std::uint32_t tag = probe.hash_tag(k);
    if ((tag >> 25) == (want >> 25) && (tag & home_mask) == (want & home_mask))
      keys.push_back(k);
  }
  return keys;
}

TEST(TagCollisionStorm, FlatHashMapInsertFindEraseChurn) {
  // 96 same-tag same-home keys in a table that sizes to 256 buckets: every
  // probe scans 6+ full groups of tag-positive lanes.
  const std::vector<std::uint64_t> keys = colliding_keys(96, 9);
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> truth;

  for (std::uint64_t k : keys) {
    m.insert_or_assign(k, k * 3);
    truth[k] = k * 3;
  }
  for (std::uint64_t k : keys) {
    const std::uint64_t* v = m.find(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k * 3);
  }

  // Backward-shift delete every other colliding key, then overwrite and
  // re-probe the survivors. Deleting from the middle of a same-tag chain
  // shifts later same-home entries down across group boundaries.
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_TRUE(m.erase(keys[i]));
    truth.erase(keys[i]);
  }
  for (std::size_t i = 1; i < keys.size(); i += 2) {
    m.insert_or_assign(keys[i], keys[i] + 7);
    truth[keys[i]] = keys[i] + 7;
  }
  for (std::uint64_t k : keys) {
    const std::uint64_t* v = m.find(k);
    const auto it = truth.find(k);
    ASSERT_EQ(v == nullptr, it == truth.end()) << k;
    if (v != nullptr) EXPECT_EQ(*v, it->second);
  }
  EXPECT_EQ(m.size(), truth.size());

  // Random churn across the colliding set, mirrored into the truth map.
  Rng rng(0xC0111DE);
  for (int round = 0; round < 2000; ++round) {
    const std::uint64_t k = keys[rng.uniform(0, keys.size() - 1)];
    switch (rng.uniform(0, 2)) {
      case 0:
        m.insert_or_assign(k, k ^ round);
        truth[k] = k ^ static_cast<std::uint64_t>(round);
        break;
      case 1:
        EXPECT_EQ(m.erase(k), truth.erase(k) > 0) << k;
        break;
      default: {
        const std::uint64_t* v = m.find(k);
        const auto it = truth.find(k);
        ASSERT_EQ(v == nullptr, it == truth.end()) << k;
        if (v != nullptr) EXPECT_EQ(*v, it->second);
      }
    }
  }
  EXPECT_EQ(m.size(), truth.size());
}

TEST(TagCollisionStorm, FlatLruMapProbeEvictTakeChurn) {
  const std::vector<std::uint64_t> keys = colliding_keys(96, 9);
  constexpr std::size_t kCap = 64;
  FlatLruMap<std::uint64_t, std::uint64_t> m(kCap);

  // Fill past capacity: the 32 oldest colliding keys must evict, in insert
  // order, leaving exactly the 64 newest resident.
  std::vector<std::uint64_t> evicted;
  for (std::uint64_t k : keys)
    m.put(k, k + 1, [&](const std::uint64_t& key, std::uint64_t&&) {
      evicted.push_back(key);
    });
  ASSERT_EQ(evicted.size(), keys.size() - kCap);
  for (std::size_t i = 0; i < evicted.size(); ++i) EXPECT_EQ(evicted[i], keys[i]);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::uint64_t* v = m.get(keys[i]);
    if (i < keys.size() - kCap) {
      EXPECT_EQ(v, nullptr) << keys[i];
    } else {
      ASSERT_NE(v, nullptr) << keys[i];
      EXPECT_EQ(*v, keys[i] + 1);
    }
  }

  // take() consumes from the middle of the same-tag chain (erase +
  // backward shift); the tagged getters must agree with the untagged ones
  // throughout.
  std::size_t taken = 0;
  for (std::size_t i = keys.size() - kCap; i < keys.size(); i += 3) {
    const std::uint64_t k = keys[i];
    const auto got = m.take(k);
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(*got, k + 1);
    ++taken;
    EXPECT_FALSE(m.take(k).has_value());  // consumed
  }
  EXPECT_EQ(m.size(), kCap - taken);
  for (std::size_t i = keys.size() - kCap; i < keys.size(); ++i) {
    const std::uint64_t k = keys[i];
    const bool expect_live = (i - (keys.size() - kCap)) % 3 != 0;
    const std::uint32_t tag = m.hash_tag(k);
    std::uint64_t* v = m.get_tagged(tag, k);
    ASSERT_EQ(v != nullptr, expect_live) << k;
    if (v != nullptr) EXPECT_EQ(*v, k + 1);
  }
}

Fingerprint fp(std::uint64_t id) { return Fingerprint::of_content_id(id); }

// Content ids whose *fingerprint* tags all collide (same ctrl byte, same
// home for tables <= 2^home_bits buckets), via IndexCache's public
// hash_tag.
std::vector<std::uint64_t> colliding_content_ids(std::size_t n,
                                                 int home_bits) {
  const IndexCache probe(IndexCache::kEntryBytes, IndexCache::kEntryBytes);
  const std::uint32_t want = probe.hash_tag(fp(1));
  const std::uint32_t home_mask = (1u << home_bits) - 1;
  std::vector<std::uint64_t> ids;
  for (std::uint64_t k = 1; ids.size() < n; ++k) {
    const std::uint32_t tag = probe.hash_tag(fp(k));
    if ((tag >> 25) == (want >> 25) && (tag & home_mask) == (want & home_mask))
      ids.push_back(k);
  }
  return ids;
}

TEST(TagCollisionStorm, FusedLookupMatchesScalarUnderCollisions) {
  // The fused pass's probe chains are at their worst when every key of the
  // span lands in one group chain — including the ghost consumption order
  // on duplicate misses (a consumed ghost entry backward-shifts its
  // colliding neighbours mid-span).
  const std::vector<std::uint64_t> ids = colliding_content_ids(48, 9);
  constexpr std::uint64_t kEntries = 16;
  IndexCache fused(kEntries * IndexCache::kEntryBytes,
                   kEntries * IndexCache::kEntryBytes);
  IndexCache scalar(kEntries * IndexCache::kEntryBytes,
                    kEntries * IndexCache::kEntryBytes);
  // Insert all 48: 32 spill to the ghost list, 16 stay resident — all in
  // one collision chain in both tables.
  for (std::uint64_t id : ids) {
    fused.insert(fp(id), id);
    scalar.insert(fp(id), id);
  }

  Rng rng(0x57083);
  for (int round = 0; round < 30; ++round) {
    std::vector<Fingerprint> request;
    const std::size_t len = 1 + rng.next() % 24;
    for (std::size_t i = 0; i < len; ++i)
      request.push_back(fp(ids[rng.uniform(0, ids.size() - 1)]));

    std::vector<const IndexEntry*> out_f(request.size());
    fused.lookup_fused(request, out_f.data());
    for (std::size_t i = 0; i < request.size(); ++i) {
      const IndexEntry* e = scalar.lookup(request[i]);
      ASSERT_EQ(out_f[i] == nullptr, e == nullptr) << "round " << round;
      if (e == nullptr) (void)scalar.ghost_probe(request[i]);
      else EXPECT_EQ(out_f[i]->pba, e->pba);
    }
    // Keep churn flowing through the chain.
    const std::uint64_t id = ids[rng.uniform(0, ids.size() - 1)];
    fused.insert(fp(id), id + 1000);
    scalar.insert(fp(id), id + 1000);
  }
  EXPECT_EQ(fused.hits(), scalar.hits());
  EXPECT_EQ(fused.misses(), scalar.misses());
  EXPECT_EQ(fused.ghost_hits(), scalar.ghost_hits());
  EXPECT_EQ(fused.size_entries(), scalar.size_entries());
  for (std::uint64_t id : ids) {
    const IndexEntry* ef = fused.peek(fp(id));
    const IndexEntry* es = scalar.peek(fp(id));
    ASSERT_EQ(ef == nullptr, es == nullptr) << id;
    if (ef != nullptr) EXPECT_EQ(ef->pba, es->pba);
  }
}

}  // namespace
}  // namespace pod
