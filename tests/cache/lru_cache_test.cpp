#include "cache/lru_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pod {
namespace {

TEST(LruMap, PutGet) {
  LruMap<int, std::string> m(4);
  m.put(1, "one");
  ASSERT_NE(m.get(1), nullptr);
  EXPECT_EQ(*m.get(1), "one");
  EXPECT_EQ(m.get(2), nullptr);
}

TEST(LruMap, OverwriteKeepsSize) {
  LruMap<int, int> m(4);
  m.put(1, 10);
  m.put(1, 20);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.get(1), 20);
}

TEST(LruMap, EvictsLeastRecentlyUsed) {
  LruMap<int, int> m(2);
  std::vector<int> evicted;
  auto on_evict = [&](const int& k, int&&) { evicted.push_back(k); };
  m.put(1, 1, on_evict);
  m.put(2, 2, on_evict);
  m.put(3, 3, on_evict);
  EXPECT_EQ(evicted, (std::vector<int>{1}));
  EXPECT_EQ(m.get(1), nullptr);
  EXPECT_NE(m.get(2), nullptr);
}

TEST(LruMap, GetPromotesToMru) {
  LruMap<int, int> m(2);
  m.put(1, 1);
  m.put(2, 2);
  (void)m.get(1);  // 1 becomes MRU; 2 is now LRU
  m.put(3, 3);
  EXPECT_NE(m.get(1), nullptr);
  EXPECT_EQ(m.get(2), nullptr);
}

TEST(LruMap, PeekDoesNotPromote) {
  LruMap<int, int> m(2);
  m.put(1, 1);
  m.put(2, 2);
  (void)m.peek(1);  // no promotion: 1 stays LRU
  m.put(3, 3);
  EXPECT_EQ(m.get(1), nullptr);
  EXPECT_NE(m.get(2), nullptr);
}

TEST(LruMap, EraseRemoves) {
  LruMap<int, int> m(4);
  m.put(1, 1);
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.size(), 0u);
}

TEST(LruMap, PopLruReturnsOldest) {
  LruMap<int, int> m(4);
  m.put(1, 10);
  m.put(2, 20);
  auto [k, v] = m.pop_lru();
  EXPECT_EQ(k, 1);
  EXPECT_EQ(v, 10);
  EXPECT_EQ(m.size(), 1u);
}

TEST(LruMap, LruKeyReflectsOrder) {
  LruMap<int, int> m(4);
  m.put(1, 1);
  m.put(2, 2);
  EXPECT_EQ(m.lru_key(), 1);
  (void)m.get(1);
  EXPECT_EQ(m.lru_key(), 2);
}

TEST(LruMap, ShrinkEvictsExcess) {
  LruMap<int, int> m(4);
  std::vector<int> evicted;
  for (int i = 0; i < 4; ++i) m.put(i, i);
  m.set_capacity(2, [&](const int& k, int&&) { evicted.push_back(k); });
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(evicted, (std::vector<int>{0, 1}));
  EXPECT_NE(m.get(3), nullptr);
}

TEST(LruMap, GrowKeepsContents) {
  LruMap<int, int> m(2);
  m.put(1, 1);
  m.put(2, 2);
  m.set_capacity(10);
  EXPECT_EQ(m.size(), 2u);
  m.put(3, 3);
  EXPECT_NE(m.get(1), nullptr);
}

TEST(LruMap, ZeroCapacityDropsInserts) {
  LruMap<int, int> m(0);
  int evicted = 0;
  m.put(1, 1, [&](const int&, int&&) { ++evicted; });
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(m.get(1), nullptr);
}

TEST(LruMap, ForEachIsMruToLru) {
  LruMap<int, int> m(4);
  m.put(1, 1);
  m.put(2, 2);
  m.put(3, 3);
  (void)m.get(1);
  std::vector<int> order;
  m.for_each([&](const int& k, const int&) { order.push_back(k); });
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(LruMap, ContainsWithoutPromotion) {
  LruMap<int, int> m(2);
  m.put(1, 1);
  m.put(2, 2);
  EXPECT_TRUE(m.contains(1));
  m.put(3, 3);
  EXPECT_FALSE(m.contains(1));  // contains() must not have promoted
}

TEST(LruMap, ClearEmpties) {
  LruMap<int, int> m(4);
  m.put(1, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.get(1), nullptr);
}

TEST(LruMap, StressManyInsertions) {
  LruMap<std::uint64_t, std::uint64_t> m(1000);
  for (std::uint64_t i = 0; i < 100000; ++i) m.put(i, i * 2);
  EXPECT_EQ(m.size(), 1000u);
  // The newest 1000 keys survive.
  EXPECT_NE(m.get(99999), nullptr);
  EXPECT_EQ(m.get(98999), nullptr);
}

}  // namespace
}  // namespace pod
