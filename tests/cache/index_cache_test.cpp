#include "cache/index_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pod {
namespace {

Fingerprint fp(std::uint64_t id) { return Fingerprint::of_content_id(id); }

TEST(IndexCache, InsertLookup) {
  IndexCache c(16 * IndexCache::kEntryBytes, 16 * IndexCache::kEntryBytes);
  c.insert(fp(1), 42);
  const IndexEntry* e = c.lookup(fp(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->pba, 42u);
}

TEST(IndexCache, CountStartsAtZeroAndIncrements) {
  // Paper Figure 6: Count initialised to 0 on insert, incremented per write
  // hit — used as the popularity / pinning signal.
  IndexCache c(16 * IndexCache::kEntryBytes, 16 * IndexCache::kEntryBytes);
  c.insert(fp(1), 7);
  EXPECT_EQ(c.peek(fp(1))->count, 0u);
  (void)c.lookup(fp(1));
  (void)c.lookup(fp(1));
  EXPECT_EQ(c.peek(fp(1))->count, 2u);
}

TEST(IndexCache, PeekDoesNotCount) {
  IndexCache c(16 * IndexCache::kEntryBytes, 16 * IndexCache::kEntryBytes);
  c.insert(fp(1), 7);
  (void)c.peek(fp(1));
  EXPECT_EQ(c.peek(fp(1))->count, 0u);
  EXPECT_EQ(c.hits(), 0u);
}

TEST(IndexCache, MissCounted) {
  IndexCache c(16 * IndexCache::kEntryBytes, 16 * IndexCache::kEntryBytes);
  EXPECT_EQ(c.lookup(fp(9)), nullptr);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.0);
}

TEST(IndexCache, LruEvictionIntoGhost) {
  IndexCache c(2 * IndexCache::kEntryBytes, 8 * IndexCache::kEntryBytes);
  c.insert(fp(1), 1);
  c.insert(fp(2), 2);
  c.insert(fp(3), 3);  // evicts fp(1)
  EXPECT_EQ(c.peek(fp(1)), nullptr);
  EXPECT_TRUE(c.ghost_probe(fp(1)));
  EXPECT_EQ(c.ghost_hits(), 1u);
}

TEST(IndexCache, LookupPromotes) {
  IndexCache c(2 * IndexCache::kEntryBytes, 8 * IndexCache::kEntryBytes);
  c.insert(fp(1), 1);
  c.insert(fp(2), 2);
  (void)c.lookup(fp(1));
  c.insert(fp(3), 3);  // evicts fp(2), not fp(1)
  EXPECT_NE(c.peek(fp(1)), nullptr);
  EXPECT_EQ(c.peek(fp(2)), nullptr);
}

TEST(IndexCache, EvictHookFires) {
  IndexCache c(1 * IndexCache::kEntryBytes, 8 * IndexCache::kEntryBytes);
  std::vector<Pba> spilled;
  c.evict_hook = [&](const Fingerprint&, const IndexEntry& e) {
    spilled.push_back(e.pba);
  };
  c.insert(fp(1), 11);
  c.insert(fp(2), 22);  // evicts fp(1) -> hook
  ASSERT_EQ(spilled.size(), 1u);
  EXPECT_EQ(spilled[0], 11u);
}

TEST(IndexCache, InvalidateRemoves) {
  IndexCache c(8 * IndexCache::kEntryBytes, 8 * IndexCache::kEntryBytes);
  c.insert(fp(1), 1);
  c.invalidate(fp(1));
  EXPECT_EQ(c.peek(fp(1)), nullptr);
}

TEST(IndexCache, RebindUpdatesPba) {
  IndexCache c(8 * IndexCache::kEntryBytes, 8 * IndexCache::kEntryBytes);
  c.insert(fp(1), 1);
  c.rebind(fp(1), 99);
  EXPECT_EQ(c.peek(fp(1))->pba, 99u);
}

TEST(IndexCache, ResizeShrinkEvictsAndHooks) {
  IndexCache c(4 * IndexCache::kEntryBytes, 16 * IndexCache::kEntryBytes);
  int hook_calls = 0;
  c.evict_hook = [&](const Fingerprint&, const IndexEntry&) { ++hook_calls; };
  for (std::uint64_t i = 0; i < 4; ++i) c.insert(fp(i), i);
  c.resize(2 * IndexCache::kEntryBytes);
  EXPECT_EQ(c.size_entries(), 2u);
  EXPECT_EQ(hook_calls, 2);
  EXPECT_TRUE(c.ghost_probe(fp(0)));
}

TEST(IndexCache, CapacityAccounting) {
  IndexCache c(10 * IndexCache::kEntryBytes + 7, 0);
  EXPECT_EQ(c.capacity_bytes(), 10 * IndexCache::kEntryBytes);
}

TEST(IndexCache, MemoryAccountingMatchesPaperEstimate) {
  // §II-B: 1 TB at 4 KB chunks needs ~8 GB of index. With 32 B entries:
  // (1 TB / 4 KB) * 32 B = 8 GiB exactly.
  const std::uint64_t entries_for_1tb = (1ULL << 40) / kBlockSize;
  EXPECT_EQ(entries_for_1tb * IndexCache::kEntryBytes, 8ULL << 30);
}

}  // namespace
}  // namespace pod
