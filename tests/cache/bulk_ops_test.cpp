// Request-scoped bulk mutation ops (put_batch / promote_batch /
// remember_batch / insert_batch) must be observationally identical to the
// scalar loops they replace: same final contents, same recency order, same
// eviction sequence, same ghost-list state. These tests drive a bulk map
// and a scalar map through identical operation streams — including the
// edge cases that stress the deferred machinery (evictions landing mid-
// batch, duplicate keys within one batch, batches straddling the index
// growth boundary) — and require bit-for-bit agreement.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/flat_lru_map.hpp"
#include "cache/ghost_cache.hpp"
#include "cache/index_cache.hpp"
#include "common/rng.hpp"
#include "hash/fingerprint.hpp"

namespace pod {
namespace {

using Map = FlatLruMap<std::uint64_t, std::uint64_t>;

/// MRU-first snapshot of contents + recency order.
std::vector<std::pair<std::uint64_t, std::uint64_t>> snapshot(const Map& m) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  m.for_each([&](const std::uint64_t& k, const std::uint64_t& v) {
    out.emplace_back(k, v);
  });
  return out;
}

/// Applies one batch to `scalar` via the per-key API and to `bulk` via
/// put_batch, then requires identical state and eviction sequences.
void check_batch(Map& scalar, Map& bulk,
                 const std::vector<std::uint64_t>& keys,
                 const std::vector<std::uint64_t>& values) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ev_scalar, ev_bulk;
  for (std::size_t i = 0; i < keys.size(); ++i)
    scalar.put(keys[i], values[i],
               [&](const std::uint64_t& k, std::uint64_t&& v) {
                 ev_scalar.emplace_back(k, v);
               });
  bulk.put_batch(keys.data(), values.data(), keys.size(),
                 [&](const std::uint64_t& k, std::uint64_t&& v) {
                   ev_bulk.emplace_back(k, v);
                 });
  EXPECT_EQ(ev_scalar, ev_bulk);
  EXPECT_EQ(snapshot(scalar), snapshot(bulk));
}

TEST(BulkOps, PutBatchMidBatchEvictionMatchesScalar) {
  // Capacity 3, batch of 8: five evictions must fire *during* the batch,
  // first draining the pre-batch LRU tail, then batch-internal entries.
  Map scalar(3), bulk(3);
  for (std::uint64_t k = 100; k < 103; ++k) {
    scalar.put(k, k);
    bulk.put(k, k);
  }
  std::vector<std::uint64_t> keys, values;
  for (std::uint64_t k = 0; k < 8; ++k) {
    keys.push_back(k);
    values.push_back(k * 10);
  }
  check_batch(scalar, bulk, keys, values);
  EXPECT_EQ(bulk.size(), 3u);
}

TEST(BulkOps, PutBatchDuplicateKeysInBatch) {
  // The same key appears three times in one batch: later occurrences must
  // overwrite (not duplicate) and end up most-recent exactly once.
  Map scalar(4), bulk(4);
  const std::vector<std::uint64_t> keys = {7, 8, 7, 9, 7, 8};
  const std::vector<std::uint64_t> values = {1, 2, 3, 4, 5, 6};
  check_batch(scalar, bulk, keys, values);
  EXPECT_EQ(*bulk.get(7), 5u);
  EXPECT_EQ(*bulk.get(8), 6u);
}

TEST(BulkOps, PutBatchDuplicatesUnderEvictionPressure) {
  // Duplicates + capacity 2: an entry can be inserted, promoted by its
  // duplicate, evicted, and re-inserted within one batch.
  Map scalar(2), bulk(2);
  const std::vector<std::uint64_t> keys = {1, 2, 1, 3, 4, 1, 2, 1};
  const std::vector<std::uint64_t> values = {10, 20, 11, 30, 40, 12, 21, 13};
  check_batch(scalar, bulk, keys, values);
}

TEST(BulkOps, PutBatchAcrossReserveBoundary) {
  // A batch that forces the index table to grow mid-stream (reserve runs
  // up front in put_batch; scalar rebuilds when it must). Final state must
  // still agree.
  Map scalar(1024), bulk(1024);
  for (std::uint64_t k = 0; k < 13; ++k) {
    scalar.put(k, k);
    bulk.put(k, k);
  }
  std::vector<std::uint64_t> keys, values;
  for (std::uint64_t k = 13; k < 200; ++k) {
    keys.push_back(k);
    values.push_back(k + 1000);
  }
  check_batch(scalar, bulk, keys, values);
}

TEST(BulkOps, PutBatchZeroCapacityForwardsEverything) {
  Map bulk(0);
  const std::vector<std::uint64_t> keys = {1, 2, 3};
  const std::vector<std::uint64_t> values = {10, 20, 30};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> evicted;
  bulk.put_batch(keys.data(), values.data(), keys.size(),
                 [&](const std::uint64_t& k, std::uint64_t&& v) {
                   evicted.emplace_back(k, v);
                 });
  EXPECT_EQ(evicted.size(), 3u);
  EXPECT_EQ(bulk.size(), 0u);
}

TEST(BulkOps, RandomizedPutBatchEquivalence) {
  // 200 batches of random size over a small key universe at tight
  // capacity: every batch cross-checked against the scalar loop.
  Rng rng(42);
  Map scalar(64), bulk(64);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0, 31));
    std::vector<std::uint64_t> keys, values;
    for (std::size_t i = 0; i < n; ++i) {
      keys.push_back(rng.uniform(0, 255));
      values.push_back(rng.next());
    }
    check_batch(scalar, bulk, keys, values);
  }
}

TEST(BulkOps, PromoteBatchMatchesScalarGets) {
  Map scalar(16), bulk(16);
  for (std::uint64_t k = 0; k < 16; ++k) {
    scalar.put(k, k);
    bulk.put(k, k);
  }
  const std::vector<std::uint64_t> keys = {3, 11, 3, 99, 0, 15};
  for (const std::uint64_t k : keys) scalar.get(k);
  bulk.promote_batch(keys.data(), keys.size());
  EXPECT_EQ(snapshot(scalar), snapshot(bulk));
}

TEST(BulkOps, GhostRememberBatchMatchesScalar) {
  GhostCache<std::uint64_t> scalar(64 * 16), bulk(64 * 16);
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0, 15));
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < n; ++i) keys.push_back(rng.uniform(0, 511));
    for (const std::uint64_t k : keys) scalar.remember(k);
    bulk.remember_batch(keys.data(), keys.size());
    // Probe a few keys on both — consuming hits must agree (sequence
    // numbers advanced identically).
    for (int p = 0; p < 4; ++p) {
      const std::uint64_t k = rng.uniform(0, 511);
      EXPECT_EQ(scalar.probe_and_consume(k), bulk.probe_and_consume(k));
    }
  }
  EXPECT_EQ(scalar.hits(), bulk.hits());
}

Fingerprint fp_of(std::uint64_t i) { return Fingerprint::of_prefix(i); }

TEST(BulkOps, IndexCacheInsertBatchMatchesScalar) {
  // Tight cache (32 entries) so insert batches continually evict into the
  // ghost list; evict_hook order and ghost state must match the scalar
  // insert loop exactly.
  const std::uint64_t cap = 32 * IndexCache::kEntryBytes;
  const std::uint64_t ghost_cap = 64 * 16;
  IndexCache scalar(cap, ghost_cap), bulk(cap, ghost_cap);
  std::vector<std::pair<Fingerprint, Pba>> hook_scalar, hook_bulk;
  scalar.evict_hook = [&](const Fingerprint& fp, const IndexEntry& e) {
    hook_scalar.emplace_back(fp, e.pba);
  };
  bulk.evict_hook = [&](const Fingerprint& fp, const IndexEntry& e) {
    hook_bulk.emplace_back(fp, e.pba);
  };

  Rng rng(99);
  for (int round = 0; round < 100; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0, 15));
    std::vector<Fingerprint> fps;
    std::vector<Pba> pbas;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = rng.uniform(0, 255);
      fps.push_back(fp_of(k));
      pbas.push_back(k * 8);
    }
    for (std::size_t i = 0; i < n; ++i) scalar.insert(fps[i], pbas[i]);
    bulk.insert_batch(fps.data(), pbas.data(), n);

    // Interleave lookups so Count/promotion state also stays in lockstep.
    for (int p = 0; p < 4; ++p) {
      const Fingerprint fp = fp_of(rng.uniform(0, 255));
      const IndexEntry* a = scalar.lookup(fp);
      const IndexEntry* b = bulk.lookup(fp);
      ASSERT_EQ(a == nullptr, b == nullptr);
      if (a != nullptr) {
        EXPECT_EQ(a->pba, b->pba);
        EXPECT_EQ(a->count, b->count);
      }
      if (a == nullptr)
        EXPECT_EQ(scalar.ghost_probe(fp), bulk.ghost_probe(fp));
    }
  }
  EXPECT_EQ(hook_scalar, hook_bulk);
  EXPECT_EQ(scalar.size_entries(), bulk.size_entries());
  EXPECT_EQ(scalar.ghost_hits(), bulk.ghost_hits());
  EXPECT_EQ(scalar.hits(), bulk.hits());
  EXPECT_EQ(scalar.misses(), bulk.misses());
}

}  // namespace
}  // namespace pod
