// FlatLruMap must be a drop-in for LruMap: this file mirrors
// lru_cache_test.cpp case for case, then adds coverage for the flat
// layout's own hazards (slot recycling, backward-shift deletion, pointer
// stability across index-table growth).
#include "cache/flat_lru_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace pod {
namespace {

TEST(FlatLruMap, PutGet) {
  FlatLruMap<int, std::string> m(4);
  m.put(1, "one");
  ASSERT_NE(m.get(1), nullptr);
  EXPECT_EQ(*m.get(1), "one");
  EXPECT_EQ(m.get(2), nullptr);
}

TEST(FlatLruMap, OverwriteKeepsSize) {
  FlatLruMap<int, int> m(4);
  m.put(1, 10);
  m.put(1, 20);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.get(1), 20);
}

TEST(FlatLruMap, EvictsLeastRecentlyUsed) {
  FlatLruMap<int, int> m(2);
  std::vector<int> evicted;
  auto on_evict = [&](const int& k, int&&) { evicted.push_back(k); };
  m.put(1, 1, on_evict);
  m.put(2, 2, on_evict);
  m.put(3, 3, on_evict);
  EXPECT_EQ(evicted, (std::vector<int>{1}));
  EXPECT_EQ(m.get(1), nullptr);
  EXPECT_NE(m.get(2), nullptr);
}

TEST(FlatLruMap, GetPromotesToMru) {
  FlatLruMap<int, int> m(2);
  m.put(1, 1);
  m.put(2, 2);
  (void)m.get(1);  // 1 becomes MRU; 2 is now LRU
  m.put(3, 3);
  EXPECT_NE(m.get(1), nullptr);
  EXPECT_EQ(m.get(2), nullptr);
}

TEST(FlatLruMap, PeekDoesNotPromote) {
  FlatLruMap<int, int> m(2);
  m.put(1, 1);
  m.put(2, 2);
  (void)m.peek(1);  // no promotion: 1 stays LRU
  m.put(3, 3);
  EXPECT_EQ(m.get(1), nullptr);
  EXPECT_NE(m.get(2), nullptr);
}

TEST(FlatLruMap, EraseRemoves) {
  FlatLruMap<int, int> m(4);
  m.put(1, 1);
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.size(), 0u);
}

TEST(FlatLruMap, TakeReturnsAndRemoves) {
  FlatLruMap<int, std::string> m(4);
  m.put(1, "one");
  auto taken = m.take(1);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(*taken, "one");
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.take(1).has_value());
}

TEST(FlatLruMap, PopLruReturnsOldest) {
  FlatLruMap<int, int> m(4);
  m.put(1, 10);
  m.put(2, 20);
  auto [k, v] = m.pop_lru();
  EXPECT_EQ(k, 1);
  EXPECT_EQ(v, 10);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatLruMap, LruKeyReflectsOrder) {
  FlatLruMap<int, int> m(4);
  m.put(1, 1);
  m.put(2, 2);
  EXPECT_EQ(m.lru_key(), 1);
  (void)m.get(1);
  EXPECT_EQ(m.lru_key(), 2);
}

TEST(FlatLruMap, ShrinkEvictsExcess) {
  FlatLruMap<int, int> m(4);
  std::vector<int> evicted;
  for (int i = 0; i < 4; ++i) m.put(i, i);
  m.set_capacity(2, [&](const int& k, int&&) { evicted.push_back(k); });
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(evicted, (std::vector<int>{0, 1}));
  EXPECT_NE(m.get(3), nullptr);
}

TEST(FlatLruMap, GrowKeepsContents) {
  FlatLruMap<int, int> m(2);
  m.put(1, 1);
  m.put(2, 2);
  m.set_capacity(10);
  EXPECT_EQ(m.size(), 2u);
  m.put(3, 3);
  EXPECT_NE(m.get(1), nullptr);
}

TEST(FlatLruMap, ZeroCapacityDropsInserts) {
  FlatLruMap<int, int> m(0);
  int evicted = 0;
  m.put(1, 1, [&](const int&, int&&) { ++evicted; });
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(m.get(1), nullptr);
}

TEST(FlatLruMap, ForEachIsMruToLru) {
  FlatLruMap<int, int> m(4);
  m.put(1, 1);
  m.put(2, 2);
  m.put(3, 3);
  (void)m.get(1);
  std::vector<int> order;
  m.for_each([&](const int& k, const int&) { order.push_back(k); });
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(FlatLruMap, ContainsWithoutPromotion) {
  FlatLruMap<int, int> m(2);
  m.put(1, 1);
  m.put(2, 2);
  EXPECT_TRUE(m.contains(1));
  m.put(3, 3);
  EXPECT_FALSE(m.contains(1));  // contains() must not have promoted
}

TEST(FlatLruMap, ClearEmpties) {
  FlatLruMap<int, int> m(4);
  m.put(1, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.get(1), nullptr);
}

TEST(FlatLruMap, StressManyInsertions) {
  FlatLruMap<std::uint64_t, std::uint64_t> m(1000);
  for (std::uint64_t i = 0; i < 100000; ++i) m.put(i, i * 2);
  EXPECT_EQ(m.size(), 1000u);
  // The newest 1000 keys survive.
  EXPECT_NE(m.get(99999), nullptr);
  EXPECT_EQ(m.get(98999), nullptr);
}

// Identity hashes (std::hash<uint64_t>) with stride-crafted keys cluster
// without the Fibonacci scramble; the probe chains plus backward-shift
// deletion must still resolve every key.
TEST(FlatLruMap, ClusteredKeysSurviveChurn) {
  FlatLruMap<std::uint64_t, std::uint64_t> m(64);
  const std::uint64_t stride = 1ull << 32;  // collide in low table bits
  for (std::uint64_t round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < 64; ++i) m.put(i * stride, round);
    for (std::uint64_t i = 0; i < 64; i += 2) m.erase(i * stride);
    for (std::uint64_t i = 1; i < 64; i += 2) {
      auto* v = m.get(i * stride);
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(*v, round);
    }
  }
}

// Value pointers returned by get() stay valid across erasure of other
// keys and freelist slot reuse (only pool growth — an insert with an empty
// freelist — may relocate entries, vector-style).
TEST(FlatLruMap, PointerStabilityAcrossEraseAndReuse) {
  FlatLruMap<int, std::uint64_t> m(100000);
  for (int i = 0; i < 1000; ++i) m.put(i, static_cast<std::uint64_t>(i));
  const std::uint64_t* p = m.peek(7);
  for (int i = 100; i < 600; ++i) m.erase(i);       // backward-shift churn
  for (int i = 2000; i < 2500; ++i) m.put(i, 1);    // reuses freed slots
  EXPECT_EQ(m.peek(7), p);
  EXPECT_EQ(*p, 7u);
}

// Interleaved insert/erase/evict exercise slot recycling: the same slot
// numbers are reused and the intrusive list must never dangle.
TEST(FlatLruMap, RecyclingChurnMatchesModel) {
  FlatLruMap<int, int> m(8);
  std::vector<int> evicted;
  auto on_evict = [&](const int& k, int&&) { evicted.push_back(k); };
  for (int i = 0; i < 1000; ++i) {
    m.put(i, i, on_evict);
    if (i % 3 == 0) m.erase(i - 1);
    if (i % 5 == 0 && !m.empty()) m.pop_lru();
  }
  EXPECT_LE(m.size(), 8u);
  std::vector<int> keys;
  m.for_each([&](const int& k, const int&) { keys.push_back(k); });
  EXPECT_EQ(keys.size(), m.size());
}

}  // namespace
}  // namespace pod
