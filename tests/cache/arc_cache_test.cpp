#include "cache/arc_cache.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace pod {
namespace {

TEST(ArcCache, MissThenHit) {
  ArcCache c(8);
  EXPECT_FALSE(c.lookup(1));
  c.insert(1);
  EXPECT_TRUE(c.lookup(1));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(ArcCache, FirstAccessLandsInT1SecondPromotesToT2) {
  ArcCache c(8);
  c.insert(1);
  EXPECT_TRUE(c.in_t1(1));
  EXPECT_FALSE(c.in_t2(1));
  EXPECT_TRUE(c.lookup(1));
  EXPECT_FALSE(c.in_t1(1));
  EXPECT_TRUE(c.in_t2(1));
}

TEST(ArcCache, CapacityBoundsResidentPages) {
  ArcCache c(4);
  for (Pba p = 0; p < 100; ++p) {
    (void)c.lookup(p);
    c.insert(p);
  }
  EXPECT_LE(c.size(), 4u);
}

TEST(ArcCache, EvictedT1PagesLeaveGhostsInB1) {
  // Canonical ARC only ghosts a T1 eviction through REPLACE (when |T1| < c
  // overall); with some T2 traffic in the mix, new arrivals push the T1
  // LRU into B1.
  ArcCache c(2);
  c.insert(0);
  c.insert(1);
  ASSERT_TRUE(c.lookup(1));  // promote 1 -> T2
  c.insert(2);               // REPLACE evicts 0 from T1 into B1
  EXPECT_TRUE(c.in_b1(0));
}

TEST(ArcCache, B1GhostHitGrowsRecencyTarget) {
  ArcCache c(2);
  c.insert(0);
  c.insert(1);
  ASSERT_TRUE(c.lookup(1));
  c.insert(2);  // evicts 0 into B1
  ASSERT_TRUE(c.in_b1(0));
  const std::size_t p_before = c.recency_target();
  c.insert(0);  // ghost hit
  EXPECT_GT(c.recency_target(), p_before);
  EXPECT_TRUE(c.in_t2(0));  // ghost re-admission counts as frequent
}

TEST(ArcCache, B2GhostHitShrinksRecencyTarget) {
  ArcCache c(2);
  // Build frequency traffic: 1 and 2 promoted to T2, then push them out.
  c.insert(1);
  (void)c.lookup(1);
  c.insert(2);
  (void)c.lookup(2);
  c.insert(3);
  c.insert(4);
  // Inflate p first so a shrink is observable.
  for (Pba p = 10; p < 14; ++p) c.insert(p);
  bool shrank = false;
  for (Pba candidate : {Pba{1}, Pba{2}}) {
    if (c.in_b2(candidate)) {
      const std::size_t before = c.recency_target();
      c.insert(candidate);
      shrank = c.recency_target() <= before;
      break;
    }
  }
  EXPECT_TRUE(shrank);
}

TEST(ArcCache, ScanResistance) {
  // A hot working set re-referenced throughout must survive a long one-shot
  // scan — the defining advantage of ARC over plain LRU.
  ArcCache c(16);
  for (Pba hot = 0; hot < 8; ++hot) {
    c.insert(hot);
    (void)c.lookup(hot);  // promote to T2
  }
  for (Pba scan = 1000; scan < 1200; ++scan) {
    (void)c.lookup(scan);
    c.insert(scan);
  }
  int survivors = 0;
  for (Pba hot = 0; hot < 8; ++hot)
    if (c.lookup(hot)) ++survivors;
  EXPECT_GE(survivors, 6);
}

TEST(ArcCache, BeatsNothingButTracksZipf) {
  // Sanity: on a Zipf-skewed stream ARC achieves a solid hit rate.
  ArcCache c(256);
  Rng rng(1);
  ZipfSampler zipf(4096, 0.9);
  for (int i = 0; i < 50000; ++i) {
    const Pba b = zipf.sample(rng);
    if (!c.lookup(b)) c.insert(b);
  }
  EXPECT_GT(c.hit_rate(), 0.4);
}

TEST(ArcCache, InvalidateRemovesEverywhere) {
  ArcCache c(4);
  c.insert(1);
  (void)c.lookup(1);
  c.invalidate(1);
  EXPECT_FALSE(c.lookup(1));
  EXPECT_FALSE(c.in_t1(1));
  EXPECT_FALSE(c.in_t2(1));
  EXPECT_FALSE(c.in_b1(1));
  EXPECT_FALSE(c.in_b2(1));
}

TEST(ArcCache, ResizeShrinkEvicts) {
  ArcCache c(8);
  for (Pba p = 0; p < 8; ++p) c.insert(p);
  c.resize(2);
  EXPECT_LE(c.size(), 2u);
  EXPECT_EQ(c.capacity(), 2u);
}

TEST(ArcCache, ZeroCapacityNeverCaches) {
  ArcCache c(0);
  c.insert(1);
  EXPECT_FALSE(c.lookup(1));
  EXPECT_EQ(c.size(), 0u);
}

TEST(ArcCache, ReinsertResidentIsNoop) {
  ArcCache c(4);
  c.insert(1);
  c.insert(1);
  EXPECT_EQ(c.size(), 1u);
}

TEST(ArcCache, StressInvariantHolds) {
  ArcCache c(32);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const Pba b = rng.uniform(0, 200);
    if (!c.lookup(b)) c.insert(b);
    ASSERT_LE(c.size(), 32u);
    ASSERT_LE(c.recency_target(), 32u);
  }
}

}  // namespace
}  // namespace pod
