// The fused single-pass probe paths must be observationally identical to
// the scalar per-chunk loops they replace: IndexCache::lookup_fused ≡
// lookup-then-ghost_probe per chunk (the batch_probe_test contract, one
// pass instead of two), the tagged sequential API ≡ its untagged twins
// (same promotions, same ghost consumption, same mid-request insert
// visibility), and ReadCache's tagged loop ≡ the per-block original. The
// fused forms may only differ in memory-latency behaviour (one hash per
// key, span-wide prefetching), never in results or cache state.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/index_cache.hpp"
#include "cache/read_cache.hpp"
#include "common/rng.hpp"
#include "hash/fingerprint.hpp"

namespace pod {
namespace {

Fingerprint fp(std::uint64_t id) { return Fingerprint::of_content_id(id); }

// Scalar reference for lookup_fused: the per-chunk engine probe loop
// (lookup each chunk in order; ghost-probe immediately on each miss — the
// fused pass keeps this interleaving, unlike lookup_batch's two phases).
void scalar_probe(IndexCache& c, const std::vector<Fingerprint>& fps,
                  std::vector<const IndexEntry*>& out) {
  out.assign(fps.size(), nullptr);
  for (std::size_t i = 0; i < fps.size(); ++i) {
    out[i] = c.lookup(fps[i]);
    if (out[i] == nullptr) (void)c.ghost_probe(fps[i]);
  }
}

void expect_same_state(IndexCache& a, IndexCache& b, std::uint64_t key_range) {
  EXPECT_EQ(a.hits(), b.hits());
  EXPECT_EQ(a.misses(), b.misses());
  EXPECT_EQ(a.ghost_hits(), b.ghost_hits());
  EXPECT_EQ(a.ghost().near_hits(), b.ghost().near_hits());
  EXPECT_EQ(a.size_entries(), b.size_entries());
  EXPECT_EQ(a.ghost().size(), b.ghost().size());
  for (std::uint64_t k = 0; k < key_range; ++k) {
    const IndexEntry* ea = a.peek(fp(k));
    const IndexEntry* eb = b.peek(fp(k));
    ASSERT_EQ(ea == nullptr, eb == nullptr) << k;
    if (ea != nullptr) {
      EXPECT_EQ(ea->pba, eb->pba);
      EXPECT_EQ(ea->count, eb->count);
    }
    ASSERT_EQ(a.ghost().contains(fp(k)), b.ghost().contains(fp(k))) << k;
  }
}

// Identical insert pressure must then evict in the same order — the LRU
// chains (including the fused pass's detached-chain promotions) agree.
void expect_same_eviction_order(IndexCache& a, IndexCache& b,
                                std::uint64_t fresh_base, std::size_t n) {
  std::vector<std::uint64_t> ev_a, ev_b;
  a.evict_hook = [&](const Fingerprint& f, const IndexEntry&) {
    ev_a.push_back(f.prefix64());
  };
  b.evict_hook = [&](const Fingerprint& f, const IndexEntry&) {
    ev_b.push_back(f.prefix64());
  };
  for (std::uint64_t k = 0; k < n; ++k) {
    a.insert(fp(fresh_base + k), fresh_base + k);
    b.insert(fp(fresh_base + k), fresh_base + k);
  }
  EXPECT_EQ(ev_a, ev_b);
  a.evict_hook = nullptr;
  b.evict_hook = nullptr;
}

TEST(IndexCacheFused, MatchesScalarWithEvictedKeysInGhost) {
  constexpr std::uint64_t kEntries = 8;
  IndexCache fused(kEntries * IndexCache::kEntryBytes,
                   kEntries * IndexCache::kEntryBytes);
  IndexCache scalar(kEntries * IndexCache::kEntryBytes,
                    kEntries * IndexCache::kEntryBytes);
  for (std::uint64_t k = 0; k < 16; ++k) {
    fused.insert(fp(k), 100 + k);
    scalar.insert(fp(k), 100 + k);
  }

  // Mixes resident hits (8..15), ghost hits (0..7), and cold misses.
  std::vector<Fingerprint> request;
  for (std::uint64_t k = 0; k < 24; ++k) request.push_back(fp(k));

  std::vector<const IndexEntry*> out_f(request.size());
  fused.lookup_fused(request, out_f.data());
  std::vector<const IndexEntry*> out_s;
  scalar_probe(scalar, request, out_s);

  for (std::size_t i = 0; i < request.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(out_f[i] == nullptr, out_s[i] == nullptr);
    if (out_f[i] != nullptr) {
      EXPECT_EQ(out_f[i]->pba, out_s[i]->pba);
      EXPECT_EQ(out_f[i]->count, out_s[i]->count);
    }
  }
  expect_same_state(fused, scalar, 24);
  expect_same_eviction_order(fused, scalar, 1000, kEntries);
  EXPECT_EQ(fused.batch_probes(), request.size());
}

TEST(IndexCacheFused, DuplicateFingerprintsConsumeGhostOnce) {
  // Duplicate misses in one span: the first consumes the ghost entry, the
  // second finds it gone — exactly the scalar interleaving. (This is where
  // a naive "batch the ghost probes too" fusion would diverge.)
  IndexCache fused(8 * IndexCache::kEntryBytes, 8 * IndexCache::kEntryBytes);
  IndexCache scalar(8 * IndexCache::kEntryBytes, 8 * IndexCache::kEntryBytes);
  for (IndexCache* c : {&fused, &scalar}) {
    c->insert(fp(2), 22);
    c->insert(fp(1), 11);
    for (std::uint64_t k = 10; k < 17; ++k) c->insert(fp(k), k);
  }
  ASSERT_EQ(fused.peek(fp(2)), nullptr);   // evicted → ghost
  ASSERT_NE(fused.peek(fp(1)), nullptr);   // resident

  const std::vector<Fingerprint> request = {fp(1), fp(2), fp(1), fp(2), fp(3)};
  std::vector<const IndexEntry*> out_f(request.size());
  fused.lookup_fused(request, out_f.data());
  std::vector<const IndexEntry*> out_s;
  scalar_probe(scalar, request, out_s);

  for (std::size_t i = 0; i < request.size(); ++i)
    ASSERT_EQ(out_f[i] == nullptr, out_s[i] == nullptr) << i;
  expect_same_state(fused, scalar, 20);
  EXPECT_EQ(fused.peek(fp(1))->count, 2u);
  EXPECT_EQ(fused.ghost_hits(), 1u);  // fp(2)'s entry consumed exactly once
}

TEST(IndexCacheFused, LongRandomSequenceMatchesScalarAndBatch) {
  constexpr std::uint64_t kEntries = 32;
  IndexCache fused(kEntries * IndexCache::kEntryBytes,
                   kEntries * IndexCache::kEntryBytes);
  IndexCache batched(kEntries * IndexCache::kEntryBytes,
                     kEntries * IndexCache::kEntryBytes);
  IndexCache scalar(kEntries * IndexCache::kEntryBytes,
                    kEntries * IndexCache::kEntryBytes);
  Rng rng(42);
  for (int round = 0; round < 60; ++round) {
    const std::uint64_t k = rng.next() % 128;
    fused.insert(fp(k), k);
    batched.insert(fp(k), k);
    scalar.insert(fp(k), k);

    std::vector<Fingerprint> request;
    const std::size_t len = 1 + rng.next() % 40;
    for (std::size_t i = 0; i < len; ++i)
      request.push_back(fp(rng.next() % 128));

    std::vector<const IndexEntry*> out_f(request.size());
    fused.lookup_fused(request, out_f.data());
    std::vector<const IndexEntry*> out_b(request.size());
    batched.lookup_batch(request, out_b.data());
    std::vector<const IndexEntry*> out_s;
    scalar_probe(scalar, request, out_s);
    for (std::size_t i = 0; i < request.size(); ++i) {
      ASSERT_EQ(out_f[i] == nullptr, out_s[i] == nullptr);
      ASSERT_EQ(out_b[i] == nullptr, out_s[i] == nullptr);
    }
  }
  expect_same_state(fused, scalar, 128);
  expect_same_state(batched, scalar, 128);
  expect_same_eviction_order(fused, scalar, 2000, kEntries);
}

TEST(IndexCacheTagged, SequentialTaggedApiMatchesUntagged) {
  // The Full-Dedupe shape: lookups interleaved with mid-request inserts
  // (promotions later duplicates must see). Tags precomputed up front stay
  // valid across those inserts.
  constexpr std::uint64_t kEntries = 16;
  IndexCache tagged(kEntries * IndexCache::kEntryBytes,
                    kEntries * IndexCache::kEntryBytes);
  IndexCache plain(kEntries * IndexCache::kEntryBytes,
                   kEntries * IndexCache::kEntryBytes);
  for (std::uint64_t k = 0; k < 24; ++k) {
    tagged.insert(fp(k), k);
    plain.insert(fp(k), k);
  }

  Rng rng(7);
  for (int round = 0; round < 40; ++round) {
    std::vector<Fingerprint> request;
    const std::size_t len = 1 + rng.next() % 24;
    for (std::size_t i = 0; i < len; ++i)
      request.push_back(fp(rng.next() % 64));

    std::vector<IndexCache::Tag> tags(len);
    for (std::size_t i = 0; i < len; ++i) {
      tags[i] = tagged.hash_tag(request[i]);
      tagged.prefetch_tag(tags[i]);
    }
    for (std::size_t i = 0; i < len; ++i) {
      const IndexEntry* et = tagged.lookup_tagged(tags[i], request[i]);
      const IndexEntry* ep = plain.lookup(request[i]);
      ASSERT_EQ(et == nullptr, ep == nullptr) << i;
      if (et == nullptr) {
        ASSERT_EQ(tagged.ghost_probe_tagged(tags[i], request[i]),
                  plain.ghost_probe(request[i]))
            << i;
        // "Promote from on-disk" on every third miss: the insert must be
        // visible to later duplicates in the same request.
        if (i % 3 == 0) {
          tagged.insert_tagged(tags[i], request[i], 500 + i);
          plain.insert(request[i], 500 + i);
        }
      }
    }
  }
  expect_same_state(tagged, plain, 64);
  expect_same_eviction_order(tagged, plain, 3000, kEntries);
}

TEST(ReadCacheTagged, TaggedLoopMatchesPerBlockOriginal) {
  // The fused read-plan loop: lookup → miss → ghost probe → insert, with
  // tags precomputed for the whole request. Inserts and ghost consumption
  // inside the loop must behave exactly like the untagged per-block path.
  ReadCache tagged(16 * kBlockSize, 32 * kBlockSize);
  ReadCache plain(16 * kBlockSize, 32 * kBlockSize);
  Rng rng(99);
  for (int round = 0; round < 80; ++round) {
    std::vector<Pba> req;
    const std::size_t len = 1 + rng.next() % 16;
    for (std::size_t i = 0; i < len; ++i) req.push_back(rng.next() % 64);

    std::vector<ReadCache::Tag> tags(len);
    for (std::size_t i = 0; i < len; ++i) {
      tags[i] = tagged.hash_tag(req[i]);
      tagged.prefetch_tag(tags[i]);
    }
    for (std::size_t i = 0; i < len; ++i) {
      const bool hit_t = tagged.lookup_tagged(tags[i], req[i]);
      const bool hit_p = plain.lookup(req[i]);
      ASSERT_EQ(hit_t, hit_p) << "round " << round << " block " << i;
      if (!hit_t) {
        ASSERT_EQ(tagged.ghost_probe_tagged(tags[i], req[i]),
                  plain.ghost_probe(req[i]));
        tagged.insert_tagged(tags[i], req[i]);
        plain.insert(req[i]);
      }
    }
  }
  EXPECT_EQ(tagged.hits(), plain.hits());
  EXPECT_EQ(tagged.misses(), plain.misses());
  EXPECT_EQ(tagged.ghost_hits(), plain.ghost_hits());
  EXPECT_EQ(tagged.size_blocks(), plain.size_blocks());
}

}  // namespace
}  // namespace pod
