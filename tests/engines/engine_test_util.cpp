#include "engine_test_util.hpp"

namespace pod::testutil {

EngineConfig small_engine_config() {
  EngineConfig cfg;
  cfg.logical_blocks = 16 * 1024;  // 64 MiB logical
  cfg.memory_bytes = 2 * kMiB;
  cfg.index_region_blocks = 1024;
  cfg.swap_region_blocks = 1024;
  return cfg;
}

OwnedRequest make_write(Lba lba, const std::vector<std::uint64_t>& content_ids,
                        SimTime arrival) {
  IoRequest r;
  r.arrival = arrival;
  r.type = OpType::kWrite;
  r.lba = lba;
  r.nblocks = static_cast<std::uint32_t>(content_ids.size());
  std::vector<Fingerprint> fps;
  fps.reserve(content_ids.size());
  for (std::uint64_t id : content_ids)
    fps.push_back(Fingerprint::of_content_id(id));
  return OwnedRequest(r, std::move(fps));
}

IoRequest make_read(Lba lba, std::uint32_t nblocks, SimTime arrival) {
  IoRequest r;
  r.arrival = arrival;
  r.type = OpType::kRead;
  r.lba = lba;
  r.nblocks = nblocks;
  return r;
}

EngineHarness::EngineHarness(EngineKind kind, EngineConfig cfg, RaidLevel raid) {
  RunSpec spec;
  spec.engine = kind;
  spec.raid = raid;
  spec.engine_cfg = cfg;
  volume_ = make_volume(sim_, spec);
  engine_ = make_engine(sim_, *volume_, spec);
}

Duration EngineHarness::run(const IoRequest& req) {
  const SimTime start = sim_.now();
  Duration latency = -1;
  engine_->submit(req, [this, start, &latency]() { latency = sim_.now() - start; });
  sim_.run();
  return latency;
}

Duration EngineHarness::write(Lba lba, const std::vector<std::uint64_t>& ids) {
  return run(make_write(lba, ids));
}

Duration EngineHarness::read(Lba lba, std::uint32_t nblocks) {
  return run(make_read(lba, nblocks));
}

void EngineHarness::warm_write(Lba lba, const std::vector<std::uint64_t>& ids) {
  engine_->warm(make_write(lba, ids));
}

std::uint64_t EngineHarness::disk_ops() const {
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < volume_->num_disks(); ++d) {
    const DiskStats& s = volume_->disk(d).stats();
    total += s.reads + s.writes;
  }
  return total;
}

std::uint64_t EngineHarness::disk_data_writes() const {
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < volume_->num_disks(); ++d)
    total += volume_->disk(d).stats().writes;
  return total;
}

}  // namespace pod::testutil
