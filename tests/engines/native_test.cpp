#include "engines/native.hpp"

#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace pod {
namespace {

using testutil::EngineHarness;
using testutil::make_read;
using testutil::make_write;

TEST(Native, WriteCompletesWithPositiveLatency) {
  EngineHarness h(EngineKind::kNative);
  const Duration lat = h.write(100, {1, 2, 3, 4});
  EXPECT_GT(lat, 0);
  EXPECT_EQ(h.engine().stats().write_requests, 1u);
  EXPECT_EQ(h.engine().stats().chunks_written, 4u);
}

TEST(Native, NoHashingDelayOnWrites) {
  EngineHarness h(EngineKind::kNative);
  (void)h.write(100, {1});
  EXPECT_EQ(h.engine().hash_engine().chunks_hashed(), 0u);
}

TEST(Native, NeverEliminatesWrites) {
  EngineHarness h(EngineKind::kNative);
  for (int i = 0; i < 5; ++i) (void)h.write(100, {1, 2});  // same content
  EXPECT_EQ(h.engine().stats().writes_eliminated, 0u);
  EXPECT_EQ(h.engine().stats().chunks_deduped, 0u);
}

TEST(Native, WritesLandAtHomeLocations) {
  EngineHarness h(EngineKind::kNative);
  (void)h.write(200, {1, 2, 3});
  EXPECT_EQ(h.engine().store().resolve(200), 200u);
  EXPECT_EQ(h.engine().store().resolve(202), 202u);
  EXPECT_EQ(h.engine().map_table_bytes(), 0u);
}

TEST(Native, CapacityEqualsLiveLogicalBlocks) {
  EngineHarness h(EngineKind::kNative);
  (void)h.write(0, {1, 2});
  (void)h.write(10, {1, 2});  // duplicate content still occupies new blocks
  EXPECT_EQ(h.engine().physical_blocks_used(), 4u);
}

TEST(Native, ReadMissesGoToDisk) {
  EngineHarness h(EngineKind::kNative);
  (void)h.write(100, {1, 2, 3, 4});
  const std::uint64_t ops_before = h.disk_ops();
  (void)h.read(100, 4);
  EXPECT_GT(h.disk_ops(), ops_before);
}

TEST(Native, RepeatedReadHitsCache) {
  EngineHarness h(EngineKind::kNative);
  (void)h.write(100, {1, 2, 3, 4});
  (void)h.read(100, 4);  // populates cache
  const std::uint64_t ops_before = h.disk_ops();
  const Duration lat = h.read(100, 4);
  EXPECT_EQ(h.disk_ops(), ops_before);  // no disk traffic
  EXPECT_EQ(lat, 0);                    // pure cache hit
  EXPECT_GT(h.engine().read_cache().hits(), 0u);
}

TEST(Native, NoIndexCache) {
  EngineHarness h(EngineKind::kNative);
  EXPECT_EQ(h.engine().index_cache(), nullptr);
  // All memory serves the read cache.
  EXPECT_EQ(h.engine().read_cache().capacity_bytes(),
            testutil::small_engine_config().memory_bytes);
}

TEST(Native, WarmUpdatesStateWithoutDiskOps) {
  EngineHarness h(EngineKind::kNative);
  h.warm_write(100, {1, 2});
  EXPECT_EQ(h.disk_ops(), 0u);
  EXPECT_TRUE(h.engine().store().is_live(100));
  // A read after warm-up sees the data (from disk).
  (void)h.read(100, 2);
  EXPECT_GT(h.disk_ops(), 0u);
}

TEST(Native, SequentialWriteSingleVolumeOp) {
  EngineHarness h(EngineKind::kNative, testutil::small_engine_config(),
                  RaidLevel::kRaid0);
  (void)h.write(100, {1, 2, 3, 4});
  // RAID0, 4 contiguous blocks within one stripe unit: exactly one disk op.
  EXPECT_EQ(h.disk_ops(), 1u);
}

TEST(Native, OverwriteSameLbaKeepsCapacityFlat) {
  EngineHarness h(EngineKind::kNative);
  (void)h.write(50, {1});
  (void)h.write(50, {2});
  (void)h.write(50, {3});
  EXPECT_EQ(h.engine().physical_blocks_used(), 1u);
}

}  // namespace
}  // namespace pod
