#include "engines/pod_engine.hpp"

#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace pod {
namespace {

using testutil::EngineHarness;
using testutil::make_read;
using testutil::make_write;

PodEngine& pod_engine(EngineHarness& h) {
  return static_cast<PodEngine&>(h.engine());
}

TEST(PodEngine, BehavesLikeSelectDedupeOnPolicy) {
  EngineHarness h(EngineKind::kPod);
  (void)h.write(0, {1});
  (void)h.write(100, {1});
  EXPECT_EQ(h.engine().stats().writes_eliminated, 1u);

  (void)h.write(10, {5});
  (void)h.write(900, {6});
  (void)h.write(200, {5, 40, 6, 41});  // cat-2 scatter: untouched
  EXPECT_EQ(h.engine().stats().chunks_deduped, 1u);  // only the cat-1 block
}

TEST(PodEngine, StartsAtConfiguredPartition) {
  EngineHarness h(EngineKind::kPod);
  EXPECT_NEAR(pod_engine(h).icache().index_fraction(), 0.5, 0.01);
}

TEST(PodEngine, AdaptationRunsOnIntervalBoundaries) {
  EngineConfig cfg = testutil::small_engine_config();
  EngineHarness h(EngineKind::kPod, cfg);
  // Submit requests spaced beyond the adaptation interval (500 ms default).
  Simulator& sim = h.sim();
  for (int i = 0; i < 5; ++i) {
    OwnedRequest req = make_write(static_cast<Lba>(i) * 4,
                                  {static_cast<std::uint64_t>(i)});
    req.req().arrival = sim.now() + sec(1);
    sim.schedule_at(req.req().arrival,
                    [&, req]() { h.engine().submit(req, nullptr); });
    sim.run();
  }
  EXPECT_GE(pod_engine(h).icache().stats().adaptations, 4u);
}

TEST(PodEngine, WriteBurstGrowsIndexCache) {
  // Under index-cache pressure and a pure write workload, ghost index hits
  // dominate and memory must flow toward the index cache.
  EngineConfig cfg = testutil::small_engine_config();
  cfg.memory_bytes = 256 * IndexCache::kEntryBytes;  // tiny budget
  EngineHarness h(EngineKind::kPod, cfg);
  Simulator& sim = h.sim();

  SimTime t = 0;
  // Rewrite a working set larger than the index cache so misses that would
  // have hit with more memory (ghost hits) keep occurring.
  for (int round = 0; round < 40; ++round) {
    for (std::uint64_t i = 0; i < 200; ++i) {
      t += ms(20);
      OwnedRequest req = make_write(i * 2, {1000 + i}, t);
      sim.schedule_at(t, [&h, req]() { h.engine().submit(req, nullptr); });
    }
  }
  sim.run();
  EXPECT_GT(pod_engine(h).icache().stats().grew_index, 0u);
  EXPECT_GT(pod_engine(h).icache().index_fraction(), 0.5);
}

TEST(PodEngine, ReadBurstGrowsReadCache) {
  EngineConfig cfg = testutil::small_engine_config();
  cfg.memory_bytes = 64 * kBlockSize;  // 32-block read cache at 50%
  EngineHarness h(EngineKind::kPod, cfg);
  Simulator& sim = h.sim();
  // Prime some data.
  for (std::uint64_t i = 0; i < 128; ++i) h.warm_write(i, {i + 1});
  // Read burst over a working set slightly larger than the read cache:
  // evicted blocks are re-read soon (near ghost hits), arguing for growth.
  SimTime t = 0;
  for (int round = 0; round < 40; ++round) {
    for (std::uint64_t i = 0; i < 38; ++i) {
      t += ms(20);
      IoRequest req = make_read(i, 1, t);
      sim.schedule_at(t, [&h, req]() { h.engine().submit(req, nullptr); });
    }
  }
  sim.run();
  EXPECT_GT(pod_engine(h).icache().stats().grew_read, 0u);
  EXPECT_LT(pod_engine(h).icache().index_fraction(), 0.5);
}

TEST(PodEngine, SwapTrafficLandsInSwapRegion) {
  EngineConfig cfg = testutil::small_engine_config();
  cfg.memory_bytes = 64 * kBlockSize;
  EngineHarness h(EngineKind::kPod, cfg);
  Simulator& sim = h.sim();
  for (std::uint64_t i = 0; i < 128; ++i) h.warm_write(i, {i + 1});
  SimTime t = 0;
  for (int round = 0; round < 30; ++round) {
    for (std::uint64_t i = 0; i < 38; ++i) {
      t += ms(25);
      IoRequest req = make_read(i, 1, t);
      sim.schedule_at(t, [&h, req]() { h.engine().submit(req, nullptr); });
    }
  }
  sim.run();
  const auto& st = pod_engine(h).icache().stats();
  EXPECT_GT(st.swap_blocks_read + st.swap_blocks_written, 0u);
}

TEST(PodEngine, NoAdaptationDuringWarmup) {
  EngineHarness h(EngineKind::kPod);
  for (std::uint64_t i = 0; i < 1000; ++i) h.warm_write(i * 2, {i});
  EXPECT_EQ(pod_engine(h).icache().stats().adaptations, 0u);
}

TEST(PodEngine, AdjustmentsNeverExceedAdaptations) {
  EngineConfig cfg = testutil::small_engine_config();
  cfg.memory_bytes = 64 * kBlockSize;
  EngineHarness h(EngineKind::kPod, cfg);
  Simulator& sim = h.sim();
  SimTime t = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    t += ms(30);
    OwnedRequest req = testutil::make_write(i, {i}, t);
    sim.schedule_at(t, [&h, req]() { h.engine().submit(req, nullptr); });
  }
  sim.run();
  const ICacheStats& st = pod_engine(h).icache().stats();
  EXPECT_LE(st.grew_index + st.grew_read, st.adaptations);
}

}  // namespace
}  // namespace pod
