#include <gtest/gtest.h>

#include "engines/engine.hpp"

namespace pod {
namespace {

TEST(EngineStats, DeltaSubtractsEveryCounter) {
  EngineStats before;
  before.write_requests = 10;
  before.read_requests = 5;
  before.write_blocks = 30;
  before.read_blocks = 12;
  before.writes_eliminated = 4;
  before.chunks_deduped = 9;
  before.chunks_written = 21;
  before.category_counts[1] = 3;
  before.index_disk_reads = 2;
  before.index_disk_writes = 1;
  before.read_ops_issued = 7;

  EngineStats after = before;
  after.write_requests += 100;
  after.read_requests += 50;
  after.write_blocks += 300;
  after.read_blocks += 120;
  after.writes_eliminated += 40;
  after.chunks_deduped += 90;
  after.chunks_written += 210;
  after.category_counts[1] += 30;
  after.index_disk_reads += 20;
  after.index_disk_writes += 10;
  after.read_ops_issued += 70;

  const EngineStats d = EngineStats::delta(after, before);
  EXPECT_EQ(d.write_requests, 100u);
  EXPECT_EQ(d.read_requests, 50u);
  EXPECT_EQ(d.write_blocks, 300u);
  EXPECT_EQ(d.read_blocks, 120u);
  EXPECT_EQ(d.writes_eliminated, 40u);
  EXPECT_EQ(d.chunks_deduped, 90u);
  EXPECT_EQ(d.chunks_written, 210u);
  EXPECT_EQ(d.category_counts[1], 30u);
  EXPECT_EQ(d.category_counts[0], 0u);
  EXPECT_EQ(d.index_disk_reads, 20u);
  EXPECT_EQ(d.index_disk_writes, 10u);
  EXPECT_EQ(d.read_ops_issued, 70u);
}

TEST(EngineStats, RemovedWritePct) {
  EngineStats s;
  EXPECT_DOUBLE_EQ(s.removed_write_pct(), 0.0);
  s.write_requests = 200;
  s.writes_eliminated = 50;
  EXPECT_DOUBLE_EQ(s.removed_write_pct(), 25.0);
}

TEST(EngineStats, DedupRatio) {
  EngineStats s;
  EXPECT_DOUBLE_EQ(s.dedup_ratio(), 0.0);
  s.chunks_deduped = 30;
  s.chunks_written = 70;
  EXPECT_DOUBLE_EQ(s.dedup_ratio(), 0.3);
}

TEST(EngineConfig, RequiredVolumeCoversAllRegions) {
  EngineConfig cfg;
  cfg.logical_blocks = 100'000;
  cfg.pool_fraction = 0.25;
  cfg.index_region_blocks = 5000;
  cfg.swap_region_blocks = 3000;
  EXPECT_EQ(required_volume_blocks(cfg), 100'000 + 25'000 + 5000 + 3000);
}

TEST(EngineConfig, TinyLogicalSpaceStillGetsMinimumPool) {
  EngineConfig cfg;
  cfg.logical_blocks = 100;
  cfg.pool_fraction = 0.25;
  // Pool floors at 1024 blocks so redirects never starve.
  EXPECT_GE(required_volume_blocks(cfg),
            100 + 1024 + cfg.index_region_blocks + cfg.swap_region_blocks);
}

}  // namespace
}  // namespace pod
