#include "engines/idedup.hpp"

#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace pod {
namespace {

using testutil::EngineHarness;

TEST(IDedup, SmallWritesBypassedEntirely) {
  EngineHarness h(EngineKind::kIDedup);
  (void)h.write(0, {1, 2});     // 8 KB: bypassed
  (void)h.write(100, {1, 2});   // identical content, still bypassed
  auto& eng = static_cast<IDedupEngine&>(h.engine());
  EXPECT_EQ(eng.bypassed_requests(), 2u);
  EXPECT_EQ(h.engine().stats().chunks_deduped, 0u);
  EXPECT_EQ(h.engine().stats().writes_eliminated, 0u);
  // Bypassed requests are not even fingerprinted.
  EXPECT_EQ(h.engine().hash_engine().chunks_hashed(), 0u);
}

TEST(IDedup, LargeFullyRedundantSequentialEliminated) {
  EngineHarness h(EngineKind::kIDedup);
  (void)h.write(0, {1, 2, 3, 4, 5, 6});
  (void)h.write(100, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(h.engine().stats().writes_eliminated, 1u);
  EXPECT_EQ(h.engine().stats().chunks_deduped, 6u);
}

TEST(IDedup, ShortRunsNotDeduped) {
  EngineHarness h(EngineKind::kIDedup);  // seq threshold 4
  (void)h.write(0, {1, 2, 3});
  // 5-block request with a 3-long dup run: below the threshold.
  (void)h.write(100, {1, 2, 3, 50, 51});
  EXPECT_EQ(h.engine().stats().chunks_deduped, 0u);
}

TEST(IDedup, QualifyingRunWithinLargerRequestDeduped) {
  EngineHarness h(EngineKind::kIDedup);
  (void)h.write(0, {1, 2, 3, 4});
  (void)h.write(100, {1, 2, 3, 4, 60});
  EXPECT_EQ(h.engine().stats().chunks_deduped, 4u);
  EXPECT_EQ(h.engine().stats().writes_eliminated, 0u);  // still wrote 1 chunk
}

TEST(IDedup, ThresholdConfigurable) {
  EngineConfig cfg = testutil::small_engine_config();
  cfg.idedup_seq_threshold = 2;
  EngineHarness h(EngineKind::kIDedup, cfg);
  (void)h.write(0, {1, 2, 3});
  (void)h.write(100, {1, 2, 99});
  EXPECT_EQ(h.engine().stats().chunks_deduped, 2u);
}

TEST(IDedup, BypassSizeConfigurable) {
  EngineConfig cfg = testutil::small_engine_config();
  cfg.idedup_bypass_blocks = 7;
  EngineHarness h(EngineKind::kIDedup, cfg);
  (void)h.write(0, {1, 2, 3, 4, 5, 6});   // 6 blocks <= 7: bypassed
  (void)h.write(100, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(static_cast<IDedupEngine&>(h.engine()).bypassed_requests(), 2u);
  EXPECT_EQ(h.engine().stats().chunks_deduped, 0u);
}

TEST(IDedup, SmallWriteContentNeverEntersIndex) {
  // Bypassed content is invisible: later large requests containing it see
  // no duplicates.
  EngineHarness h(EngineKind::kIDedup);
  (void)h.write(0, {1, 2});                       // bypassed, not indexed
  (void)h.write(100, {1, 2, 3, 4, 5});            // run over 1,2 impossible
  EXPECT_EQ(h.engine().stats().chunks_deduped, 0u);
}

TEST(IDedup, SequentialityRequired) {
  EngineHarness h(EngineKind::kIDedup);
  // Write sources in scattered positions.
  (void)h.write(0, {1});
  (void)h.write(500, {2});
  (void)h.write(1000, {3});
  (void)h.write(1500, {4});
  // A request whose chunks are individually redundant but land on
  // non-adjacent disk blocks: no sequential run, no dedup.
  (void)h.write(200, {1, 2, 3, 4});
  EXPECT_EQ(h.engine().stats().chunks_deduped, 0u);
}

TEST(IDedup, CapacitySavedOnLargeDups) {
  EngineHarness h(EngineKind::kIDedup);
  for (int i = 0; i < 10; ++i)
    (void)h.write(static_cast<Lba>(i) * 16, {1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(h.engine().physical_blocks_used(), 8u);
}

}  // namespace
}  // namespace pod
