// Timing-plan contracts of the engine write path: the modelled hash delay
// strictly precedes disk activity, stage-1 index lookups gate the data
// ops, and warm-mode replays leave identical policy state behind.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"
#include "engines/full_dedupe.hpp"
#include "synth/generator.hpp"

namespace pod {
namespace {

using testutil::EngineHarness;
using testutil::make_write;

TEST(WritePathTiming, HashDelayPrecedesDiskOps) {
  // On an idle array, a unique 1-block write under Select-Dedupe pays the
  // fingerprint latency *before* dispatching its disk ops. The 32 us shift
  // also changes the platter's rotational phase at dispatch, so the total
  // differs from Native's by the hash delay modulo up to one rotation.
  EngineHarness select(EngineKind::kSelectDedupe);
  const Duration with_hash = select.write(0, {1});
  EXPECT_EQ(select.engine().hash_engine().chunks_hashed(), 1u);

  EngineHarness native(EngineKind::kNative);  // identical write, no hashing
  const Duration without_hash = native.write(0, {1});
  EXPECT_EQ(native.engine().hash_engine().chunks_hashed(), 0u);

  const Duration rotation = ms(8.34);  // 7200 RPM
  const Duration delta = with_hash - without_hash;
  EXPECT_GE(delta, us(32) - rotation);
  EXPECT_LE(delta, us(32) + rotation);
  EXPECT_NE(delta, 0);
}

TEST(WritePathTiming, EliminatedWriteSkipsDiskEntirely) {
  EngineHarness h(EngineKind::kSelectDedupe);
  (void)h.write(0, {1, 2, 3});
  const std::uint64_t ops = h.disk_ops();
  const Duration lat = h.write(64, {1, 2, 3});
  EXPECT_EQ(h.disk_ops(), ops);
  EXPECT_EQ(lat, 3 * us(32));
}

TEST(WritePathTiming, IndexLookupReadGatesDataWrite) {
  // Full-Dedupe with a cold index-cache entry: the bucket read (stage 1)
  // must complete before the data write (stage 2), so the total exceeds
  // what the same write costs when the lookup hits memory.
  EngineConfig cfg = testutil::small_engine_config();
  cfg.memory_bytes = 64 * IndexCache::kEntryBytes * 2;
  EngineHarness h(EngineKind::kFullDedupe, cfg);
  // Prime content 7 and then flood the cache so its entry is evicted but
  // the on-disk index still knows it.
  (void)h.write(0, {7});
  for (std::uint64_t i = 0; i < 300; ++i) (void)h.write(2 + i * 2, {100 + i});

  // A *partial* dup: chunk 0 dups content 7 (cold lookup -> disk read),
  // chunk 1 is fresh and must still be written after the lookup resolves.
  const Duration lat = h.run(make_write(5000, {7, 999}));
  // Lower bound: hash (2 chunks) + one disk read + one disk write, serial.
  EXPECT_GT(lat, 2 * us(32) + ms(2));
  EXPECT_GT(h.engine().stats().index_disk_reads, 0u);
}

TEST(WritePathTiming, WarmAndTimedReplayConvergeToSameState) {
  // Replaying the same prefix functionally (warm) or with full timing must
  // produce the same dedup state: physical blocks, map table, liveness.
  WorkloadProfile p = tiny_test_profile();
  p.measured_requests = 1500;
  p.warmup_requests = 0;
  const Trace trace = TraceGenerator(p).generate();

  EngineConfig cfg = testutil::small_engine_config();
  cfg.logical_blocks = p.volume_blocks;

  EngineHarness warm(EngineKind::kSelectDedupe, cfg);
  for (const IoRequest& r : trace.requests) warm.engine().warm(r);

  EngineHarness timed(EngineKind::kSelectDedupe, cfg);
  for (const IoRequest& r : trace.requests) {
    IoRequest req = r;
    req.arrival = timed.sim().now();
    (void)timed.run(req);
  }

  EXPECT_EQ(warm.engine().physical_blocks_used(),
            timed.engine().physical_blocks_used());
  EXPECT_EQ(warm.engine().map_table_bytes(), timed.engine().map_table_bytes());
  EXPECT_EQ(warm.engine().store().live_logical_blocks(),
            timed.engine().store().live_logical_blocks());
  // And the resolutions agree block for block.
  for (const IoRequest& r : trace.requests) {
    if (!r.is_write()) continue;
    for (std::uint32_t b = 0; b < r.nblocks; ++b) {
      EXPECT_EQ(warm.engine().store().resolve(r.lba + b),
                timed.engine().store().resolve(r.lba + b));
    }
  }
}

TEST(WritePathTiming, WarmPerformsNoSimulatedTime) {
  EngineHarness h(EngineKind::kPod);
  for (std::uint64_t i = 0; i < 500; ++i) h.warm_write(i * 2, {i});
  EXPECT_EQ(h.sim().now(), 0);
  EXPECT_EQ(h.disk_ops(), 0u);
}

}  // namespace
}  // namespace pod
