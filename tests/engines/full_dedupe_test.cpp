#include "engines/full_dedupe.hpp"

#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace pod {
namespace {

using testutil::EngineHarness;
using testutil::make_write;

TEST(FullDedupe, HashesEveryWrittenChunk) {
  EngineHarness h(EngineKind::kFullDedupe);
  (void)h.write(0, {1, 2, 3});
  EXPECT_EQ(h.engine().hash_engine().chunks_hashed(), 3u);
}

TEST(FullDedupe, FullyRedundantWriteEliminated) {
  EngineHarness h(EngineKind::kFullDedupe);
  (void)h.write(0, {1, 2, 3, 4});
  const std::uint64_t writes_before = h.disk_data_writes();
  (void)h.write(100, {1, 2, 3, 4});
  EXPECT_EQ(h.disk_data_writes(), writes_before);
  EXPECT_EQ(h.engine().stats().writes_eliminated, 1u);
  EXPECT_EQ(h.engine().stats().chunks_deduped, 4u);
}

TEST(FullDedupe, EliminatedWriteLatencyIsHashOnly) {
  EngineHarness h(EngineKind::kFullDedupe);
  (void)h.write(0, {1, 2});
  const Duration lat = h.write(100, {1, 2});
  // 2 chunks x 32 us, no disk ops.
  EXPECT_EQ(lat, 2 * us(32));
}

TEST(FullDedupe, DedupsScatteredChunksToo) {
  // Unlike Select-Dedupe, even isolated redundant chunks are deduplicated.
  EngineHarness h(EngineKind::kFullDedupe);
  (void)h.write(0, {1});
  (void)h.write(500, {9});
  (void)h.write(100, {1, 7, 9});  // chunks 0 and 2 dup to scattered blocks
  EXPECT_EQ(h.engine().stats().chunks_deduped, 2u);
  EXPECT_EQ(h.engine().store().resolve(100), 0u);
  EXPECT_EQ(h.engine().store().resolve(102), 500u);
}

TEST(FullDedupe, ScatteredDedupCausesReadAmplification) {
  EngineHarness h(EngineKind::kFullDedupe);
  // Three source blocks far apart.
  (void)h.write(0, {1});
  (void)h.write(1000, {2});
  (void)h.write(2000, {3});
  (void)h.write(100, {1, 2, 3});  // fully dedup'd against scattered copies
  const std::uint64_t before = h.engine().stats().read_ops_issued;
  (void)h.read(100, 3);
  // The logical read fans out into 3 non-contiguous volume reads.
  EXPECT_EQ(h.engine().stats().read_ops_issued - before, 3u);
}

TEST(FullDedupe, MapTableGrowsWithDedup) {
  EngineHarness h(EngineKind::kFullDedupe);
  (void)h.write(0, {1, 2});
  EXPECT_EQ(h.engine().map_table_bytes(), 0u);
  (void)h.write(100, {1, 2});
  EXPECT_EQ(h.engine().map_table_bytes(), 2 * MapTable::kEntryBytes);
}

TEST(FullDedupe, ColdLookupUsesOnDiskIndex) {
  EngineConfig cfg = testutil::small_engine_config();
  cfg.memory_bytes = 64 * IndexCache::kEntryBytes * 2;  // tiny index cache
  EngineHarness h(EngineKind::kFullDedupe, cfg);
  auto& full = static_cast<FullDedupeEngine&>(h.engine());
  // Write enough distinct chunks to evict early entries from the cache.
  for (std::uint64_t i = 0; i < 400; ++i) (void)h.write(i * 2, {100 + i});
  // Re-write the very first content: its cache entry is long gone, but the
  // on-disk index still knows it -> dedup with a charged disk lookup.
  const std::uint64_t disk_lookups_before = full.ondisk_index().disk_lookups();
  (void)h.write(5000, {100});
  EXPECT_GT(full.ondisk_index().disk_lookups(), disk_lookups_before);
  EXPECT_GT(h.engine().stats().index_disk_reads, 0u);
  EXPECT_EQ(h.engine().stats().writes_eliminated, 1u);
}

TEST(FullDedupe, BloomAvoidsDiskLookupsForFreshContent) {
  EngineHarness h(EngineKind::kFullDedupe);
  for (std::uint64_t i = 0; i < 100; ++i) (void)h.write(i * 4, {1000 + i});
  auto& full = static_cast<FullDedupeEngine&>(h.engine());
  // Every lookup was for never-seen content with a warm index cache; the
  // Bloom filter must have answered nearly all cold lookups without disk.
  EXPECT_GT(full.ondisk_index().bloom_negative_hits(), 0u);
  EXPECT_EQ(h.engine().stats().index_disk_reads, 0u);
}

TEST(FullDedupe, IndexMaintenanceWritesCharged) {
  EngineHarness h(EngineKind::kFullDedupe);
  for (std::uint64_t i = 0; i < 200; ++i) (void)h.write(i * 4, {5000 + i});
  EXPECT_GT(h.engine().stats().index_disk_writes, 0u);
}

TEST(FullDedupe, OverwriteInvalidatesStaleIndexEntry) {
  EngineHarness h(EngineKind::kFullDedupe);
  (void)h.write(0, {1});
  (void)h.write(0, {2});  // overwrites in place; fp(1)'s entry is stale
  // Writing content 1 again must NOT dedup against block 0 (it now holds 2).
  (void)h.write(100, {1});
  EXPECT_EQ(h.engine().store().resolve(100), 100u);
  const Fingerprint* f = h.engine().store().fingerprint_of(100);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(*f, Fingerprint::of_content_id(1));
}

TEST(FullDedupe, SharedBlockSurvivesSourceOverwrite) {
  EngineHarness h(EngineKind::kFullDedupe);
  (void)h.write(0, {1});
  (void)h.write(100, {1});       // dedup: lba 100 -> pba 0
  (void)h.write(0, {2});          // source overwritten -> redirected (COW)
  const Fingerprint* f = h.engine().store().fingerprint_of(0);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(*f, Fingerprint::of_content_id(1));  // shared data intact
  EXPECT_EQ(h.engine().store().resolve(100), 0u);
  EXPECT_NE(h.engine().store().resolve(0), 0u);
}

TEST(FullDedupe, CapacitySavingsReported) {
  EngineHarness h(EngineKind::kFullDedupe);
  for (Lba l = 0; l < 20; ++l) (void)h.write(l * 8, {1, 2, 3, 4});
  EXPECT_EQ(h.engine().physical_blocks_used(), 4u);
  EXPECT_EQ(h.engine().stats().writes_eliminated, 19u);
}

}  // namespace
}  // namespace pod
