#include "engines/select_dedupe.hpp"

#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace pod {
namespace {

using testutil::EngineHarness;

std::uint64_t category_count(EngineHarness& h, WriteCategory c) {
  return h.engine().stats().category_counts[static_cast<std::size_t>(c)];
}

TEST(SelectDedupe, SmallFullyRedundantWriteEliminated) {
  // The headline difference vs iDedup: a single-block duplicate write is
  // removed from the I/O path.
  EngineHarness h(EngineKind::kSelectDedupe);
  (void)h.write(0, {1});
  const std::uint64_t before = h.disk_data_writes();
  const Duration lat = h.write(100, {1});
  EXPECT_EQ(h.disk_data_writes(), before);
  EXPECT_EQ(h.engine().stats().writes_eliminated, 1u);
  EXPECT_EQ(lat, us(32));  // hash-only response
  EXPECT_EQ(category_count(h, WriteCategory::kFullSequential), 1u);
}

TEST(SelectDedupe, Category2ScatteredNotDeduped) {
  EngineHarness h(EngineKind::kSelectDedupe);
  (void)h.write(0, {1});
  (void)h.write(500, {2});
  // Two isolated dups inside a 6-block request: category 2, write as-is.
  (void)h.write(100, {1, 30, 31, 2, 32, 33});
  EXPECT_EQ(h.engine().stats().chunks_deduped, 0u);
  EXPECT_EQ(category_count(h, WriteCategory::kPartialBelow), 1u);
}

TEST(SelectDedupe, Category2AvoidsReadAmplification) {
  EngineHarness h(EngineKind::kSelectDedupe);
  (void)h.write(0, {1});
  (void)h.write(1000, {2});
  (void)h.write(100, {1, 40, 2, 41});  // cat 2: written contiguously
  const std::uint64_t before = h.engine().stats().read_ops_issued;
  (void)h.read(100, 4);
  // One contiguous volume read (vs 3+ under Full-Dedupe).
  EXPECT_EQ(h.engine().stats().read_ops_issued - before, 1u);
}

TEST(SelectDedupe, Category3RunDeduped) {
  EngineHarness h(EngineKind::kSelectDedupe);
  (void)h.write(0, {1, 2, 3, 4});
  // 6-block request containing the 4-long sequential dup run.
  (void)h.write(100, {1, 2, 3, 4, 70, 71});
  EXPECT_EQ(h.engine().stats().chunks_deduped, 4u);
  EXPECT_EQ(category_count(h, WriteCategory::kPartialAbove), 1u);
  EXPECT_EQ(h.engine().stats().writes_eliminated, 0u);
}

TEST(SelectDedupe, ThresholdBoundaryExactlyThree) {
  EngineHarness h(EngineKind::kSelectDedupe);  // threshold 3
  (void)h.write(0, {1, 2, 3});
  (void)h.write(100, {1, 2, 3, 80});  // run of exactly 3 qualifies
  EXPECT_EQ(h.engine().stats().chunks_deduped, 3u);

  EngineHarness h2(EngineKind::kSelectDedupe);
  (void)h2.write(0, {1, 2});
  (void)h2.write(100, {1, 2, 80});  // run of 2 < threshold
  EXPECT_EQ(h2.engine().stats().chunks_deduped, 0u);
}

TEST(SelectDedupe, FullyRedundantScatteredNotEliminated) {
  EngineHarness h(EngineKind::kSelectDedupe);
  (void)h.write(0, {1});
  (void)h.write(500, {2});
  (void)h.write(100, {1, 2});  // all redundant, but copies not adjacent
  EXPECT_EQ(h.engine().stats().writes_eliminated, 0u);
  EXPECT_EQ(category_count(h, WriteCategory::kPartialBelow), 1u);
}

TEST(SelectDedupe, SameLbaSameContentOverwriteEliminated) {
  // Pure I/O redundancy: rewriting identical data to the same location.
  EngineHarness h(EngineKind::kSelectDedupe);
  (void)h.write(0, {1, 2});
  const std::uint64_t before = h.disk_data_writes();
  (void)h.write(0, {1, 2});
  EXPECT_EQ(h.disk_data_writes(), before);
  EXPECT_EQ(h.engine().stats().writes_eliminated, 1u);
  // No extra capacity consumed.
  EXPECT_EQ(h.engine().physical_blocks_used(), 2u);
}

TEST(SelectDedupe, UniqueWritesPassThrough) {
  EngineHarness h(EngineKind::kSelectDedupe);
  (void)h.write(0, {1, 2, 3});
  EXPECT_EQ(category_count(h, WriteCategory::kUnique), 1u);
  EXPECT_EQ(h.engine().stats().chunks_written, 3u);
}

TEST(SelectDedupe, CountPreventsReferencedOverwrite) {
  // The Count/refcount consistency rule: data referenced by a dedup'd LBA
  // must survive the source being overwritten.
  EngineHarness h(EngineKind::kSelectDedupe);
  (void)h.write(0, {1, 2, 3});
  (void)h.write(100, {1, 2, 3});  // eliminated: 100 -> blocks 0..2
  (void)h.write(0, {7, 8, 9});    // source overwritten
  // Reading LBA 100 must still see content 1,2,3 at blocks 0..2.
  EXPECT_EQ(h.engine().store().resolve(100), 0u);
  EXPECT_EQ(*h.engine().store().fingerprint_of(0), Fingerprint::of_content_id(1));
  // LBA 0's new data was redirected elsewhere.
  EXPECT_NE(h.engine().store().resolve(0), 0u);
}

TEST(SelectDedupe, IndexMissMeansNoDedupNotDiskLookup) {
  // Unlike Full-Dedupe, a cold fingerprint costs nothing: no on-disk index.
  EngineConfig cfg = testutil::small_engine_config();
  cfg.memory_bytes = 64 * IndexCache::kEntryBytes;  // tiny index cache
  EngineHarness h(EngineKind::kSelectDedupe, cfg);
  for (std::uint64_t i = 0; i < 200; ++i) (void)h.write(i * 4, {300 + i});
  (void)h.write(5000, {300});  // evicted from index long ago
  EXPECT_EQ(h.engine().stats().index_disk_reads, 0u);
  EXPECT_EQ(h.engine().stats().writes_eliminated, 0u);  // missed opportunity
}

TEST(SelectDedupe, GhostProbesSignalMissedDedup) {
  EngineConfig cfg = testutil::small_engine_config();
  cfg.memory_bytes = 64 * IndexCache::kEntryBytes;
  EngineHarness h(EngineKind::kSelectDedupe, cfg);
  for (std::uint64_t i = 0; i < 100; ++i) (void)h.write(i * 4, {300 + i});
  // Probe a *recently* evicted entry (the cache holds the newest 32 of 100
  // inserts; the ghost list remembers the most recently evicted ones).
  (void)h.write(5000, {300 + 60});
  ASSERT_NE(h.engine().index_cache(), nullptr);
  EXPECT_GT(h.engine().index_cache()->ghost_hits(), 0u);
}

TEST(SelectDedupe, EliminationChainsThroughDedupedSource) {
  // A dedups against B which deduped against C: the chain must resolve to
  // the same physical blocks.
  EngineHarness h(EngineKind::kSelectDedupe);
  (void)h.write(0, {1, 2});     // C: physical 0,1
  (void)h.write(100, {1, 2});   // B eliminated -> 0,1
  (void)h.write(200, {1, 2});   // A eliminated -> 0,1
  EXPECT_EQ(h.engine().stats().writes_eliminated, 2u);
  EXPECT_EQ(h.engine().store().resolve(200), 0u);
  EXPECT_EQ(h.engine().physical_blocks_used(), 2u);
}

TEST(SelectDedupe, WarmPathBuildsDedupState) {
  EngineHarness h(EngineKind::kSelectDedupe);
  h.warm_write(0, {1, 2});
  EXPECT_EQ(h.disk_ops(), 0u);
  (void)h.write(100, {1, 2});  // timed: eliminated thanks to warm state
  EXPECT_EQ(h.engine().stats().writes_eliminated, 1u);
}

TEST(SelectDedupe, MapTableTracksNvramHighWater) {
  EngineHarness h(EngineKind::kSelectDedupe);
  (void)h.write(0, {1, 2, 3});
  (void)h.write(100, {1, 2, 3});
  EXPECT_EQ(h.engine().map_table_max_bytes(), 3 * MapTable::kEntryBytes);
}

}  // namespace
}  // namespace pod
