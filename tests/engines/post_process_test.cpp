#include "engines/post_process.hpp"

#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace pod {
namespace {

using testutil::EngineHarness;

PostProcessEngine& pp(EngineHarness& h) {
  return static_cast<PostProcessEngine&>(h.engine());
}

TEST(PostProcess, ForegroundWritesUntouched) {
  EngineHarness h(EngineKind::kPostProcess);
  (void)h.write(0, {1, 2});
  (void)h.write(100, {1, 2});  // duplicate content still written
  EXPECT_EQ(h.engine().stats().writes_eliminated, 0u);
  EXPECT_EQ(h.engine().hash_engine().chunks_hashed(), 0u);  // no inline hash
  EXPECT_EQ(h.engine().physical_blocks_used(), 4u);
}

TEST(PostProcess, ScrubReclaimsDuplicates) {
  EngineHarness h(EngineKind::kPostProcess);
  (void)h.write(0, {1, 2});
  (void)h.write(100, {1, 2});
  pp(h).scrub_pass();
  h.sim().run();  // drain background scan reads
  EXPECT_EQ(pp(h).blocks_reclaimed(), 2u);
  EXPECT_EQ(h.engine().physical_blocks_used(), 2u);
  // The reclaimed logical blocks now redirect to the canonical copies.
  EXPECT_EQ(h.engine().store().resolve(100), h.engine().store().resolve(0));
}

TEST(PostProcess, ReclaimedDataStaysReadable) {
  EngineHarness h(EngineKind::kPostProcess);
  (void)h.write(0, {1, 2, 3});
  (void)h.write(100, {1, 2, 3});
  pp(h).scrub_pass();
  h.sim().run();
  const BlockStore& store = h.engine().store();
  for (std::uint32_t i = 0; i < 3; ++i) {
    const Pba pba = store.resolve(100 + i);
    ASSERT_NE(pba, kInvalidPba);
    EXPECT_EQ(*store.fingerprint_of(pba), Fingerprint::of_content_id(1 + i));
  }
}

TEST(PostProcess, CanonicalSurvivesOverwriteOfSource) {
  EngineHarness h(EngineKind::kPostProcess);
  (void)h.write(0, {1});
  (void)h.write(100, {1});
  pp(h).scrub_pass();
  h.sim().run();
  (void)h.write(0, {9});  // overwrite the canonical holder's LBA
  const BlockStore& store = h.engine().store();
  const Pba pba = store.resolve(100);
  EXPECT_EQ(*store.fingerprint_of(pba), Fingerprint::of_content_id(1));
}

TEST(PostProcess, StaleCanonicalReanchored) {
  EngineHarness h(EngineKind::kPostProcess);
  (void)h.write(0, {1});
  pp(h).scrub_pass();   // canonical: pba 0
  h.sim().run();
  (void)h.write(0, {2});  // content 1 gone from disk entirely
  (void)h.write(100, {1});
  pp(h).scrub_pass();     // must NOT dedup 100 against the dead copy
  h.sim().run();
  const BlockStore& store = h.engine().store();
  EXPECT_EQ(*store.fingerprint_of(store.resolve(100)),
            Fingerprint::of_content_id(1));
}

TEST(PostProcess, ScanPassBounded) {
  PostProcessOptions opts;
  opts.blocks_per_pass = 4;
  EngineConfig cfg = testutil::small_engine_config();
  Simulator sim;
  RunSpec spec;
  spec.engine = EngineKind::kPostProcess;
  spec.engine_cfg = cfg;
  spec.post_process = opts;
  auto volume = make_volume(sim, spec);
  PostProcessEngine engine(sim, *volume, cfg, opts);
  for (Lba l = 0; l < 10; ++l)
    engine.warm(testutil::make_write(l, {l + 1}));
  engine.scrub_pass();
  EXPECT_EQ(engine.blocks_scanned(), 4u);
  engine.scrub_pass();
  EXPECT_EQ(engine.blocks_scanned(), 8u);
}

TEST(PostProcess, ScrubChargesBackgroundReads) {
  EngineHarness h(EngineKind::kPostProcess);
  for (Lba l = 0; l < 16; ++l) (void)h.write(l * 4, {100 + l, 200 + l});
  const std::uint64_t ops_before = h.disk_ops();
  pp(h).scrub_pass();
  h.sim().run();
  EXPECT_GT(h.disk_ops(), ops_before);
}

TEST(PostProcess, MapTableGrowsOnlyAfterScrub) {
  EngineHarness h(EngineKind::kPostProcess);
  (void)h.write(0, {1});
  (void)h.write(100, {1});
  EXPECT_EQ(h.engine().map_table_bytes(), 0u);
  pp(h).scrub_pass();
  h.sim().run();
  EXPECT_EQ(h.engine().map_table_bytes(), MapTable::kEntryBytes);
}

}  // namespace
}  // namespace pod
