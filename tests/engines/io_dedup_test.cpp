#include "engines/io_dedup.hpp"

#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace pod {
namespace {

using testutil::EngineHarness;

IoDedupEngine& io_engine(EngineHarness& h) {
  return static_cast<IoDedupEngine&>(h.engine());
}

TEST(IoDedup, WritesNeverEliminated) {
  EngineHarness h(EngineKind::kIoDedup);
  (void)h.write(0, {1, 2});
  (void)h.write(100, {1, 2});  // duplicate content still written
  EXPECT_EQ(h.engine().stats().writes_eliminated, 0u);
  EXPECT_EQ(h.engine().stats().chunks_deduped, 0u);
  EXPECT_EQ(h.engine().physical_blocks_used(), 4u);  // no capacity saving
}

TEST(IoDedup, WritesStillFingerprintedForContentTracking) {
  EngineHarness h(EngineKind::kIoDedup);
  (void)h.write(0, {1, 2});
  EXPECT_EQ(h.engine().hash_engine().chunks_hashed(), 2u);
}

TEST(IoDedup, ContentCacheHitsAcrossDifferentLbas) {
  // The defining behaviour: read of LBA B hits the cache because the same
  // *content* was read earlier via LBA A.
  EngineHarness h(EngineKind::kIoDedup);
  (void)h.write(0, {1});
  (void)h.write(100, {1});  // same content at a different location
  (void)h.read(0, 1);       // caches content fp(1)
  const std::uint64_t ops_before = h.disk_ops();
  const Duration lat = h.read(100, 1);
  EXPECT_EQ(h.disk_ops(), ops_before);  // served from the content cache
  EXPECT_EQ(lat, 0);
  EXPECT_GE(io_engine(h).content_hits(), 1u);
}

TEST(IoDedup, DistinctContentMisses) {
  EngineHarness h(EngineKind::kIoDedup);
  (void)h.write(0, {1});
  (void)h.write(100, {2});
  (void)h.read(0, 1);
  const std::uint64_t ops_before = h.disk_ops();
  (void)h.read(100, 1);
  EXPECT_GT(h.disk_ops(), ops_before);
}

TEST(IoDedup, UnwrittenBlocksKeyedByPba) {
  EngineHarness h(EngineKind::kIoDedup);
  (void)h.read(50, 1);  // never-written block: no fingerprint available
  const std::uint64_t ops_before = h.disk_ops();
  (void)h.read(50, 1);  // second read hits by PBA key
  EXPECT_EQ(h.disk_ops(), ops_before);
}

TEST(IoDedup, MissCounterAdvances) {
  EngineHarness h(EngineKind::kIoDedup);
  (void)h.write(0, {1, 2, 3});
  (void)h.read(0, 3);
  EXPECT_EQ(io_engine(h).content_misses(), 3u);
}

TEST(IoDedup, NoIndexCacheAllocated) {
  EngineHarness h(EngineKind::kIoDedup);
  EXPECT_EQ(h.engine().index_cache(), nullptr);
}

}  // namespace
}  // namespace pod
