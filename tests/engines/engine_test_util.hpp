// Shared harness for engine unit tests: a fresh simulator + volume +
// engine, with synchronous-style helpers (submit one request, run the
// simulation to completion, return the simulated latency).
#pragma once

#include <memory>
#include <vector>

#include "replay/replayer.hpp"

namespace pod::testutil {

EngineConfig small_engine_config();

/// Writes carry fingerprints, so they come back as an OwnedRequest that
/// keeps the chunk storage alive alongside the request's span.
OwnedRequest make_write(Lba lba, const std::vector<std::uint64_t>& content_ids,
                        SimTime arrival = 0);
IoRequest make_read(Lba lba, std::uint32_t nblocks, SimTime arrival = 0);

class EngineHarness {
 public:
  explicit EngineHarness(EngineKind kind,
                         EngineConfig cfg = small_engine_config(),
                         RaidLevel raid = RaidLevel::kRaid5);

  /// Submits at the current simulated time and runs to completion. The
  /// request (and any storage backing its chunk span) must outlive the
  /// call; both helpers above satisfy this for temporaries.
  Duration run(const IoRequest& req);

  /// Convenience wrappers.
  Duration write(Lba lba, const std::vector<std::uint64_t>& ids);
  Duration read(Lba lba, std::uint32_t nblocks);

  /// Functional-only processing (warm path).
  void warm_write(Lba lba, const std::vector<std::uint64_t>& ids);

  DedupEngine& engine() { return *engine_; }
  Volume& volume() { return *volume_; }
  Simulator& sim() { return sim_; }

  /// Total disk ops (reads+writes) across all member disks.
  std::uint64_t disk_ops() const;
  std::uint64_t disk_data_writes() const;

 private:
  Simulator sim_;
  std::unique_ptr<Volume> volume_;
  std::unique_ptr<DedupEngine> engine_;
};

}  // namespace pod::testutil
