// pod-trace: generate, convert and analyse POD traces from the command
// line. Useful for producing reproducible workload files that other tools
// (or the benches, via the library) can consume.
//
//   trace_tool generate <web-vm|homes|mail> <scale> <out.trace>
//   trace_tool tocsv    <in.trace> <out.csv>
//   trace_tool frombin  <in.csv>   <out.trace>
//   trace_tool stats    <in.trace|in.csv>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "synth/generator.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"

namespace {

using namespace pod;

Trace load_any(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".csv")
    return load_trace_csv(path);
  return load_trace_binary(path);
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool generate <web-vm|homes|mail> <scale> <out.trace>\n"
               "  trace_tool tocsv    <in.trace> <out.csv>\n"
               "  trace_tool frombin  <in.csv> <out.trace>\n"
               "  trace_tool stats    <in.trace|in.csv>\n");
  return 2;
}

int cmd_generate(const std::string& name, double scale, const std::string& out) {
  const Trace trace = generate_paper_trace(name, scale);
  save_trace_binary(out, trace);
  std::printf("wrote %zu requests (%zu warm-up) to %s\n",
              trace.requests.size(), trace.warmup_count, out.c_str());
  return 0;
}

int cmd_stats(const std::string& path) {
  const Trace trace = load_any(path);
  std::printf("trace %s: %zu requests (%zu warm-up)\n", trace.name.c_str(),
              trace.requests.size(), trace.warmup_count);

  for (auto [window, label] :
       {std::pair{StatsWindow::kAll, "whole trace"},
        std::pair{StatsWindow::kMeasuredOnly, "measured segment"}}) {
    const TraceCharacteristics c = characterize(trace, window);
    if (c.total_requests == 0) continue;
    std::printf("\n[%s]\n", label);
    std::printf("  requests      : %llu (%.1f%% writes)\n",
                static_cast<unsigned long long>(c.total_requests),
                100.0 * c.write_ratio);
    std::printf("  avg size      : %.1f KB (writes %.1f, reads %.1f)\n",
                c.avg_request_kb, c.avg_write_kb, c.avg_read_kb);
    std::printf("  footprint     : %llu blocks (%.1f MiB)\n",
                static_cast<unsigned long long>(c.footprint_blocks),
                static_cast<double>(c.footprint_blocks) * kBlockSize /
                    (1024.0 * 1024.0));
    const RedundancyBreakdown b = redundancy_breakdown(trace, window);
    std::printf("  I/O redundancy: %.1f%%  capacity redundancy: %.1f%%\n",
                b.io_redundancy_pct(), b.capacity_redundancy_pct());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate" && argc == 5)
      return cmd_generate(argv[2], std::atof(argv[3]), argv[4]);
    if (cmd == "tocsv" && argc == 4) {
      save_trace_csv(argv[3], load_any(argv[2]));
      std::printf("wrote %s\n", argv[3]);
      return 0;
    }
    if (cmd == "frombin" && argc == 4) {
      save_trace_binary(argv[3], load_trace_csv(argv[2]));
      std::printf("wrote %s\n", argv[3]);
      return 0;
    }
    if (cmd == "stats" && argc == 3) return cmd_stats(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
