// Quickstart: embed a POD store, write some data (including duplicates),
// read it back, and inspect the deduplication statistics.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <vector>

#include "core/pod.hpp"

int main() {
  using namespace pod;

  // A 4 GiB logical volume over the default 4-disk simulated RAID5, with a
  // 64 MiB DRAM budget that iCache splits between the fingerprint index
  // and the read cache.
  PodConfig cfg;
  cfg.logical_blocks = 1 << 20;
  cfg.memory_bytes = 64 * kMiB;
  Pod store(cfg);

  // Write a 16 KiB buffer of non-repeating data (each 4 KiB chunk gets a
  // distinct fingerprint).
  std::vector<std::uint8_t> data(4 * kBlockSize);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>((i * 2654435761ULL) >> 16);

  store.write(/*lba=*/0, data, [](Duration latency) {
    std::printf("first write  : %8.3f ms (unique data hits the disks)\n",
                to_ms(latency));
  });
  store.run();

  // ...then write the same content elsewhere: POD eliminates the disk I/O.
  store.write(/*lba=*/1000, data, [](Duration latency) {
    std::printf("second write : %8.3f ms (duplicate -> deduplicated)\n",
                to_ms(latency));
  });
  store.run();

  // Reads are served through the map table; cached blocks are free.
  store.read(1000, 4, [](Duration latency) {
    std::printf("cold read    : %8.3f ms\n", to_ms(latency));
  });
  store.run();
  store.read(1000, 4, [](Duration latency) {
    std::printf("cached read  : %8.3f ms\n", to_ms(latency));
  });
  store.run();

  const EngineStats& s = store.stats();
  std::printf("\nwrites: %llu   eliminated: %llu   chunks deduped: %llu\n",
              static_cast<unsigned long long>(s.write_requests),
              static_cast<unsigned long long>(s.writes_eliminated),
              static_cast<unsigned long long>(s.chunks_deduped));
  std::printf("physical blocks used: %llu (logical blocks written: 8)\n",
              static_cast<unsigned long long>(store.physical_blocks_used()));
  std::printf("map table (NVRAM): %llu bytes\n",
              static_cast<unsigned long long>(store.map_table_bytes()));
  return 0;
}
