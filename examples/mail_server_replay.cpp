// Scenario: replay a (scaled-down) mail-server day against POD and the
// Native baseline and compare user response times — a miniature of the
// paper's headline mail result (Select-Dedupe removes ~70% of writes and
// improves response times by ~9x).
//
//   $ ./examples/mail_server_replay [scale]
#include <cstdio>
#include <cstdlib>

#include "replay/replayer.hpp"
#include "synth/generator.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace pod;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  const WorkloadProfile profile = mail_profile(scale);
  std::printf("generating mail workload at scale %.2f (%llu requests)...\n",
              scale,
              static_cast<unsigned long long>(profile.warmup_requests +
                                              profile.measured_requests));
  const Trace trace = TraceGenerator(profile).generate();

  const TraceCharacteristics c = characterize(trace);
  std::printf("day-15 segment: %llu I/Os, %.1f%% writes, avg %.1f KB\n\n",
              static_cast<unsigned long long>(c.total_requests),
              100.0 * c.write_ratio, c.avg_request_kb);

  ReplayResult native, pod_result;
  for (EngineKind kind : {EngineKind::kNative, EngineKind::kPod}) {
    RunSpec spec;
    spec.engine = kind;
    spec.engine_cfg.logical_blocks = profile.volume_blocks;
    spec.engine_cfg.memory_bytes = paper_memory_bytes(profile.name, scale);
    std::printf("replaying against %s...\n", to_string(kind));
    ReplayResult r = run_replay(spec, trace);
    if (kind == EngineKind::kNative) native = r;
    else pod_result = r;
  }

  auto print = [](const char* label, const ReplayResult& r) {
    std::printf("  %-8s mean %8.2f ms   write %8.2f ms   read %8.2f ms   "
                "p99 %8.2f ms\n",
                label, r.mean_ms(), r.write_mean_ms(), r.read_mean_ms(),
                r.all.percentile_ms(0.99));
  };
  std::printf("\nresults:\n");
  print("native", native);
  print("pod", pod_result);

  std::printf("\nPOD removed %.1f%% of write requests (%llu of %llu),\n"
              "improved mean response time by %.1f%%, and used %.1f%% of "
              "Native's storage capacity.\n",
              pod_result.measured.removed_write_pct(),
              static_cast<unsigned long long>(
                  pod_result.measured.writes_eliminated),
              static_cast<unsigned long long>(
                  pod_result.measured.write_requests),
              improvement_pct(pod_result.mean_ms(), native.mean_ms()),
              100.0 * static_cast<double>(pod_result.physical_blocks_used) /
                  static_cast<double>(native.physical_blocks_used));
  return 0;
}
