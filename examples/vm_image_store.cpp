// Scenario: a cloud node hosting virtual-machine images "that are mostly
// identical but differ in a few data blocks" (paper §III-A).
//
// Provisions a golden image, clones it N times with small per-VM
// modifications, then patches all clones — and reports how POD's
// deduplication turns the clone storm into metadata updates.
//
//   $ ./examples/vm_image_store
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/pod.hpp"

namespace {

constexpr std::uint32_t kImageBlocks = 2048;  // 8 MiB per VM image
constexpr int kVmCount = 12;

std::vector<pod::Fingerprint> golden_image(pod::Rng& rng) {
  std::vector<pod::Fingerprint> image;
  image.reserve(kImageBlocks);
  for (std::uint32_t i = 0; i < kImageBlocks; ++i)
    image.push_back(pod::Fingerprint::of_content_id(1'000'000 + i));
  (void)rng;
  return image;
}

}  // namespace

int main() {
  using namespace pod;

  PodConfig cfg;
  cfg.logical_blocks = 1 << 20;  // 4 GiB volume
  cfg.memory_bytes = 64 * kMiB;
  Pod store(cfg);
  Rng rng(2026);

  const auto image = golden_image(rng);

  // 1. Provision the golden image.
  store.write_fingerprinted(0, image);
  store.run();
  std::printf("golden image: %u blocks, physical use %llu blocks\n",
              kImageBlocks,
              static_cast<unsigned long long>(store.physical_blocks_used()));

  // 2. Clone it for each VM, flipping ~1%% of blocks to VM-specific content
  //    (hostname, keys, logs).
  LatencyRecorder clone_latency;
  for (int vm = 1; vm <= kVmCount; ++vm) {
    std::vector<Fingerprint> clone = image;
    for (std::uint32_t i = 0; i < kImageBlocks / 100; ++i) {
      const std::uint32_t pos =
          static_cast<std::uint32_t>(rng.uniform(0, kImageBlocks - 1));
      clone[pos] = Fingerprint::of_content_id(
          2'000'000 + static_cast<std::uint64_t>(vm) * 10'000 + i);
    }
    const Lba base = static_cast<Lba>(vm) * kImageBlocks;
    // Clone in image-sized write bursts of 64 blocks.
    for (std::uint32_t off = 0; off < kImageBlocks; off += 64) {
      store.write_fingerprinted(
          base + off,
          std::span<const Fingerprint>(clone.data() + off, 64),
          [&clone_latency](Duration d) { clone_latency.add(d); });
    }
    store.run();
  }

  const EngineStats& s = store.stats();
  std::printf("\nafter cloning %d VMs (%u blocks each):\n", kVmCount,
              kImageBlocks);
  std::printf("  logical blocks stored : %u\n", (kVmCount + 1) * kImageBlocks);
  std::printf("  physical blocks used  : %llu (%.1fx saving)\n",
              static_cast<unsigned long long>(store.physical_blocks_used()),
              static_cast<double>((kVmCount + 1) * kImageBlocks) /
                  static_cast<double>(store.physical_blocks_used()));
  std::printf("  write requests        : %llu, eliminated: %llu (%.1f%%)\n",
              static_cast<unsigned long long>(s.write_requests),
              static_cast<unsigned long long>(s.writes_eliminated),
              s.removed_write_pct());
  std::printf("  mean clone write      : %.3f ms (p99 %.3f ms)\n",
              clone_latency.mean_ms(), clone_latency.percentile_ms(0.99));

  // 3. Security patch: every VM rewrites the same 5% of its image with the
  //    *same* new content — the classic fully redundant write burst POD's
  //    Select-Dedupe eliminates for all VMs after the first.
  std::vector<Fingerprint> patch;
  for (std::uint32_t i = 0; i < kImageBlocks / 20; ++i)
    patch.push_back(Fingerprint::of_content_id(3'000'000 + i));
  const std::uint64_t eliminated_before = s.writes_eliminated;
  LatencyRecorder patch_latency;
  for (int vm = 0; vm <= kVmCount; ++vm) {
    store.write_fingerprinted(
        static_cast<Lba>(vm) * kImageBlocks + 100, patch,
        [&patch_latency](Duration d) { patch_latency.add(d); });
    store.run();
  }
  std::printf("\npatching all %d images with identical content:\n",
              kVmCount + 1);
  std::printf("  eliminated writes     : %llu of %d\n",
              static_cast<unsigned long long>(s.writes_eliminated -
                                              eliminated_before),
              kVmCount + 1);
  std::printf("  mean patch write      : %.3f ms\n", patch_latency.mean_ms());
  std::printf("  map table (NVRAM)     : %.2f KiB\n",
              static_cast<double>(store.map_table_bytes()) / 1024.0);
  return 0;
}
